package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Recorder accumulates named time series. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	series map[string]*points
}

type points struct {
	t []float64
	v []float64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*points)}
}

// Record appends (t, v) to the named series.
func (r *Recorder) Record(name string, t, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.series[name]
	if !ok {
		p = &points{}
		r.series[name] = p
	}
	p.t = append(p.t, t)
	p.v = append(p.v, v)
}

// Names returns the recorded series names, sorted.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Series returns copies of the time and value slices for name (nil, nil if
// absent).
func (r *Recorder) Series(name string) (t, v []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.series[name]
	if !ok {
		return nil, nil
	}
	t = append([]float64(nil), p.t...)
	v = append([]float64(nil), p.v...)
	return t, v
}

// Len returns the number of points in the named series.
func (r *Recorder) Len(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.series[name]
	if !ok {
		return 0
	}
	return len(p.t)
}

// WriteCSV emits all series in long format: series,t,value.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "t", "value"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, name := range r.Names() {
		t, v := r.Series(name)
		for i := range t {
			rec := []string{
				name,
				strconv.FormatFloat(t[i], 'g', -1, 64),
				strconv.FormatFloat(v[i], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
