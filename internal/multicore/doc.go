// Package multicore simulates a heterogeneous multi-core platform with
// per-core DVFS — the "self-aware heterogeneous multicores" setting of the
// paper (§II, §V; Platzner [8], Agarwal [16], Agne et al. [47]).
//
// Tasks of several (hidden) types arrive continuously; their execution speed
// depends on which core type runs them (affinity) and at what frequency.
// Schedulers place tasks and set frequencies, trading performance against
// power — a run-time multi-objective trade-off that can be re-weighted while
// the system runs (run-time goal switches), and whose ground truth can shift
// under thermal throttling (drift). The self-aware scheduler is built on
// core.Agent and learns everything it needs online; the baselines encode
// fixed design-time policy.
package multicore
