// CPN routing: the paper's cognitive-packet-network case (§III, [38,39]).
//
// A 6×4 packet network carries four flows. One third of the way in, six
// links fail; later a DoS flood targets a random node. The static
// shortest-path router (design-time knowledge) collapses; the self-aware
// Q-router — every node learning from the delays its own forwarding
// decisions produce — recovers with no global knowledge anywhere.
//
// Run with: go run ./examples/cpnrouting
package main

import (
	"fmt"
	"math/rand"

	"sacs/internal/cpn"
)

func main() {
	flows := []cpn.Flow{
		{Src: 0, Dst: 23, Rate: 1.2},
		{Src: 5, Dst: 18, Rate: 1.2},
		{Src: 12, Dst: 3, Rate: 0.8},
		{Src: 20, Dst: 9, Rate: 0.8},
	}
	mkCfg := func() cpn.Config {
		return cpn.Config{
			Seed: 5, Ticks: 6000, Flows: flows,
			FailAt: 2000, FailLinks: 6,
			DosAt: 4000, DosUntil: 5000, DosRate: 6,
		}
	}

	fmt.Println("events: 6 links fail at t=2000; DoS flood t=4000..5000")
	fmt.Println()

	for _, mk := range []func() cpn.Router{
		func() cpn.Router { return cpn.NewStatic(rand.New(rand.NewSource(99))) },
		func() cpn.Router { return cpn.NewQRouter(rand.New(rand.NewSource(99))) },
	} {
		r := mk()
		n := cpn.NewNetwork(mkCfg(), r)
		fmt.Printf("--- %s ---\n", r.Name())
		for i := 0; i < 6000; i++ {
			n.Step()
			if (i+1)%1000 == 0 {
				d, lost, delivered := n.WindowStats()
				marker := ""
				switch i + 1 {
				case 3000:
					marker = "   <- after link failures"
				case 5000:
					marker = "   <- during/after DoS"
				}
				fmt.Printf("  t=%4d  delay=%6.1f  lost=%5d  delivered=%5d%s\n",
					i+1, d, lost, delivered, marker)
			}
		}
		fmt.Printf("  total: %v\n", n.Result())
		if q, ok := r.(*cpn.QRouter); ok {
			fmt.Printf("  adaptive smart-packet fraction ended at %.3f\n", q.Eps())
		}
		fmt.Println()
	}
	fmt.Println("the self-aware network keeps delivering after both disturbances;")
	fmt.Println("the static design loses roughly half of all traffic.")
}
