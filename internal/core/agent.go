package core

import (
	"fmt"
	"sort"

	"sacs/internal/goals"
	"sacs/internal/knowledge"
)

// Reasoner turns self-knowledge into actions: the "reason" stage of the
// LRA-M loop. Implementations receive a Decision context through which all
// model consultations and candidate scorings flow, so that every decision is
// explainable after the fact.
type Reasoner interface {
	// Name identifies the reasoner.
	Name() string
	// Decide inspects the decision context and calls ctx.Choose for each
	// action to take (possibly none).
	Decide(ctx *Decision)
}

// ReasonerFunc adapts a function to the Reasoner interface.
type ReasonerFunc struct {
	ReasonerName string
	Fn           func(ctx *Decision)
}

// Name implements Reasoner.
func (r ReasonerFunc) Name() string { return r.ReasonerName }

// Decide implements Reasoner.
func (r ReasonerFunc) Decide(ctx *Decision) { r.Fn(ctx) }

// Config assembles an Agent. Zero-value fields get sensible defaults; only
// Name is mandatory.
type Config struct {
	Name string
	// Caps selects the self-awareness levels; default FullStack.
	Caps Capabilities
	// Store is the knowledge base; a fresh one is created when nil.
	Store *knowledge.Store
	// Goals is the (switchable) goal set; may be nil for goal-free agents.
	Goals *goals.Switcher
	// Sensors feed the awareness processes.
	Sensors []Sensor
	// Attention optionally limits sensing per step; nil senses everything.
	Attention *Attention
	// Reasoner decides actions; nil gives an inert (observe-only) agent.
	Reasoner Reasoner
	// Effectors execute actions, routed by Action.Name. Unrouted actions
	// are reported as errors in Step's return.
	Effectors []Effector
	// ExplainDepth sets how many recent decisions the Explainer keeps
	// (default 32; 0 uses the default, negative disables explanation).
	ExplainDepth int
	// ExtraProcesses are appended after the built-in per-level processes.
	ExtraProcesses []Process
}

// Agent is a self-aware entity: the executable form of the paper's
// framework. Create one with New, then call Step once per simulation tick.
type Agent struct {
	name      string
	caps      Capabilities
	store     *knowledge.Store
	goals     *goals.Switcher
	sensors   []Sensor
	attention *Attention
	reasoner  Reasoner
	effectors map[string]Effector
	explainer *Explainer
	meta      *MetaMonitor

	processes []Process
	active    []Process // capability-filtered processes, precomputed in New
	stimProc  *StimulusProcess
	interProc *InteractionProcess
	timeProc  *TimeProcess
	goalProc  *GoalProcess
	// hot is the per-step mutable state (step counter, process counters,
	// stimulus batch buffer). New points it at a private heap slot; an
	// Arena.Adopt re-points it (and the processes writing through it) at a
	// slot in a shard-contiguous block. Never nil after New.
	hot         *StepState
	lastMetrics map[string]float64
	decFree     []*Decision // recycled Decision contexts (see Step)
}

// New builds an agent from cfg.
func New(cfg Config) *Agent {
	if cfg.Name == "" {
		panic("core: agent requires a name")
	}
	caps := cfg.Caps
	if caps == 0 {
		caps = FullStack
	}
	store := cfg.Store
	if store == nil {
		store = knowledge.NewStore(0.3, 64)
	}
	a := &Agent{
		name:      cfg.Name,
		caps:      caps,
		store:     store,
		goals:     cfg.Goals,
		sensors:   cfg.Sensors,
		attention: cfg.Attention,
		reasoner:  cfg.Reasoner,
		effectors: make(map[string]Effector, len(cfg.Effectors)),
		hot:       &StepState{},
	}
	for _, e := range cfg.Effectors {
		a.effectors[e.Name()] = e
	}
	if cfg.ExplainDepth >= 0 {
		depth := cfg.ExplainDepth
		if depth == 0 {
			depth = 32
		}
		a.explainer = NewExplainer(depth)
	}

	// Built-in processes, gated by capability level. The processes whose
	// per-tick counters live in the agent's hot step state share a.hot, so
	// an Arena.Adopt moves all of them with one rebind.
	a.stimProc = &StimulusProcess{Store: store}
	a.processes = append(a.processes, a.stimProc)
	if caps.Has(LevelInteraction) {
		a.interProc = &InteractionProcess{Self: cfg.Name, Store: store, hot: a.hot}
		a.processes = append(a.processes, a.interProc)
	}
	if caps.Has(LevelTime) {
		a.timeProc = &TimeProcess{Store: store}
		a.processes = append(a.processes, a.timeProc)
	}
	if caps.Has(LevelGoal) && cfg.Goals != nil {
		a.goalProc = &GoalProcess{Store: store, Switcher: cfg.Goals, hot: a.hot}
		a.processes = append(a.processes, a.goalProc)
	}
	if caps.Has(LevelMeta) {
		a.meta = NewMetaMonitor(a)
	}
	a.processes = append(a.processes, cfg.ExtraProcesses...)
	// Capabilities are immutable after construction, so the per-level gate
	// is applied once here instead of per process per tick.
	for _, p := range a.processes {
		if caps.Has(p.Level()) {
			a.active = append(a.active, p)
		}
	}
	return a
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Caps returns the agent's self-awareness capabilities.
func (a *Agent) Caps() Capabilities { return a.caps }

// Store returns the agent's knowledge base.
func (a *Agent) Store() *knowledge.Store { return a.store }

// Goals returns the agent's goal switcher (may be nil).
func (a *Agent) Goals() *goals.Switcher { return a.goals }

// Explainer returns the agent's explainer (nil when disabled).
func (a *Agent) Explainer() *Explainer { return a.explainer }

// Meta returns the agent's meta-monitor (nil below LevelMeta).
func (a *Agent) Meta() *MetaMonitor { return a.meta }

// TimeProcess exposes the built-in time-awareness process (nil below
// LevelTime); the meta level manipulates it.
func (a *Agent) TimeProcess() *TimeProcess { return a.timeProc }

// Steps returns how many Step calls have run.
func (a *Agent) Steps() int { return a.hot.Steps }

// AddSensor attaches a sensor at run time (systems are "continuously formed
// and reformed on the fly", §II).
func (a *Agent) AddSensor(s Sensor) { a.sensors = append(a.sensors, s) }

// Inject delivers externally produced stimuli (e.g. messages from peers in
// a collective) into the agent's awareness processes immediately.
func (a *Agent) Inject(now float64, batch []Stimulus) {
	for _, p := range a.active {
		p.Observe(now, batch)
	}
}

// Step runs one LRA-M cycle at virtual time now: sense (through attention),
// learn (processes update models), reason (goal-aware decision) and act
// (effectors). metrics is the substrate's current metric snapshot used for
// goal evaluation; it may be nil. The chosen actions are returned after
// being executed.
//
// Hot-path contract: the returned slice is backed by a pooled Decision and
// stays valid only until the agent's next Step; callers that retain actions
// across ticks must copy them (the population engine's EmitContext already
// documents the same rule).
//
//sacs:hotpath
func (a *Agent) Step(now float64, metrics map[string]float64) []Action {
	hot := a.hot
	hot.Steps++
	a.lastMetrics = metrics

	// Sense, optionally limited by attention. The batch buffer is owned by
	// the agent and reused every tick; processes consume it synchronously
	// and must not retain it. Sensors implementing BatchSensor append in
	// place; plain Sensors go through the allocating compatibility path.
	sensors := a.sensors
	if a.attention != nil {
		sensors = a.attention.Pick(now, a.sensors, a.store)
	}
	batch := hot.stimBuf[:0]
	for _, s := range sensors {
		if bs, ok := s.(BatchSensor); ok {
			batch = bs.SenseInto(now, batch)
		} else {
			batch = append(batch, s.Sense(now)...)
		}
	}
	hot.stimBuf = batch

	// Learn: feed every capability-enabled process (precomputed in New).
	if a.goalProc != nil {
		a.goalProc.SetMetrics(metrics)
	}
	for _, p := range a.active {
		p.Observe(now, batch)
	}

	// Meta: observe own awareness quality, maybe adapt it.
	if a.meta != nil {
		a.meta.Observe(now)
	}

	// Reason.
	if a.reasoner == nil {
		return nil
	}
	d := a.takeDecision(now, metrics)
	a.reasoner.Decide(d)
	if a.explainer != nil {
		if evicted := a.explainer.Record(d); evicted != nil {
			a.decFree = append(a.decFree, evicted)
		}
	}

	// Act (self-expression).
	for _, act := range d.chosen {
		if eff, ok := a.effectors[act.Name]; ok {
			if err := eff.Act(act); err != nil {
				d.failures = append(d.failures, fmt.Sprintf("%s: %v", act, err)) //sacslint:allow hotalloc effector failure is off the steady-state path; the message is the explanation payload
			}
		} else if len(a.effectors) > 0 {
			d.failures = append(d.failures, fmt.Sprintf("%s: no effector", act)) //sacslint:allow hotalloc misrouted action is off the steady-state path; the message is the explanation payload
		}
	}
	if a.explainer == nil {
		// Not retained for explanation: the context goes straight back to
		// the pool (its chosen slice stays valid until the next Step).
		a.decFree = append(a.decFree, d)
	}
	return d.chosen
}

// takeDecision returns a cleared Decision context, recycled from the
// agent's pool when one is free. Decisions cycle agent-locally: fresh →
// explainer ring (when explanation is on) → pool on eviction → reuse, so a
// steady-state step heap-allocates no decision state at all.
func (a *Agent) takeDecision(now float64, metrics map[string]float64) *Decision {
	var d *Decision
	if n := len(a.decFree); n > 0 {
		d = a.decFree[n-1]
		a.decFree = a.decFree[:n-1]
		d.reset()
	} else {
		d = &Decision{}
	}
	d.Now, d.agent, d.Goal, d.Metrics = now, a, a.activeGoal(), metrics
	return d
}

func (a *Agent) activeGoal() *goals.Set {
	if a.goals == nil || !a.caps.Has(LevelGoal) {
		return nil
	}
	return a.goals.Active()
}

// Describe renders a one-paragraph self-description at virtual time now:
// name, the report's time context, capabilities, goal, model inventory
// size. A minimal form of self-reporting. now anchors the report — the
// same agent describes itself differently as time passes (steps fall
// behind the clock when the agent idles), which is what makes the
// self-report a statement about the present rather than a static label.
func (a *Agent) Describe(now float64) string {
	goal := "none"
	if g := a.activeGoal(); g != nil {
		goal = g.String()
	}
	return fmt.Sprintf("agent %s at t=%.4g: levels=%s goal=%s models=%d steps=%d",
		a.name, now, a.caps, goal, a.store.Len(), a.hot.Steps)
}

// ModelNames lists the agent's current self-model names, sorted.
func (a *Agent) ModelNames() []string {
	names := a.store.Names(Private, false)
	sort.Strings(names)
	return names
}
