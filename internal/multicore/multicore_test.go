package multicore

import (
	"testing"

	"sacs/internal/core"
	"sacs/internal/env"
	"sacs/internal/goals"
)

func perfGoalT() *goals.Set {
	return goals.NewSet("performance",
		goals.Objective{Name: "mean-latency", Direction: goals.Minimize, Weight: 1.0, Scale: 30},
		goals.Objective{Name: "power", Direction: goals.Minimize, Weight: 0.15, Scale: 10},
	)
}

func powerGoalT() *goals.Set {
	return goals.NewSet("powersave",
		goals.Objective{Name: "mean-latency", Direction: goals.Minimize, Weight: 0.15, Scale: 30},
		goals.Objective{Name: "power", Direction: goals.Minimize, Weight: 1.0, Scale: 10},
	)
}

func newSA(caps core.Capabilities, cfg Config) (*Platform, *SelfAware) {
	gsw := goals.NewSwitcher(perfGoalT())
	sa := NewSelfAware(caps, gsw)
	p := New(cfg, sa)
	sa.Bind(p)
	return p, sa
}

func TestCoreTypesAndFreq(t *testing.T) {
	if Big.String() != "big" || Little.String() != "little" {
		t.Fatal("core type strings")
	}
	c := &Core{FreqIdx: 2}
	if c.Freq() != FreqLevels[2] {
		t.Fatal("Freq indexing")
	}
}

func TestQueueWorkIncludesRunningTask(t *testing.T) {
	c := &Core{}
	c.queue = []*Task{{remains: 5}, {remains: 3}}
	if c.QueueWork() != 8 || c.QueueLen() != 2 {
		t.Fatalf("queue stats: %v/%d", c.QueueWork(), c.QueueLen())
	}
	c.busy = &Task{remains: 2}
	if c.QueueWork() != 10 || c.QueueLen() != 3 {
		t.Fatalf("queue stats with busy: %v/%d", c.QueueWork(), c.QueueLen())
	}
}

func TestPlatformTaskConservation(t *testing.T) {
	p := New(Config{Seed: 1, Ticks: 1000}, &Governor{})
	p.Run()
	queued := 0
	for _, c := range p.Cores {
		queued += c.QueueLen()
	}
	if p.Done+queued != p.Arrived {
		t.Fatalf("conservation: done %d + queued %d != arrived %d", p.Done, queued, p.Arrived)
	}
	if p.Done == 0 {
		t.Fatal("no tasks completed")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		p, _ := newSA(core.FullStack, Config{Seed: 3, Ticks: 800})
		return p.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results:\n%v\n%v", a, b)
	}
}

func TestBaselinesPlaceOnValidCores(t *testing.T) {
	p := New(Config{Seed: 2, Ticks: 10}, &RoundRobin{})
	scheds := []Scheduler{StaticMax{}, &RoundRobin{}, &Governor{}}
	task := &Task{Type: 0, Work: 5, remains: 5}
	for _, s := range scheds {
		c := s.Place(0, task, p.Cores)
		found := false
		for _, pc := range p.Cores {
			if pc == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s placed on foreign core", s.Name())
		}
	}
}

func TestStaticMaxPinsMaxFrequency(t *testing.T) {
	p := New(Config{Seed: 2, Ticks: 10}, StaticMax{})
	StaticMax{}.Control(0, p.Cores)
	for _, c := range p.Cores {
		if c.FreqIdx != len(FreqLevels)-1 {
			t.Fatal("static-max did not pin max frequency")
		}
	}
}

func TestGovernorStepsFrequencies(t *testing.T) {
	g := &Governor{}
	p := New(Config{Seed: 2, Ticks: 10}, g)
	c := p.Cores[0]
	c.FreqIdx = 2
	c.queue = []*Task{{remains: 100}}
	g.Control(0, p.Cores)
	if c.FreqIdx != 3 {
		t.Fatalf("governor did not step up: %d", c.FreqIdx)
	}
	c.queue = nil
	g.Control(1, p.Cores)
	if c.FreqIdx != 2 {
		t.Fatalf("governor did not step down: %d", c.FreqIdx)
	}
}

func TestSelfAwareLearnsAffinity(t *testing.T) {
	p, sa := newSA(core.FullStack, Config{Seed: 4, Ticks: 4000})
	p.Run()
	// Hidden truth: type 0 runs ~1.0 vs 0.35 affinity; learned rates must
	// reflect that big is much faster than little for type 0.
	rateBig := sa.rate(0, Big)
	rateLittle := sa.rate(0, Little)
	if rateBig <= rateLittle*1.5 {
		t.Fatalf("affinity not learned: big %v vs little %v", rateBig, rateLittle)
	}
}

func TestStimulusOnlyHasNoRateModels(t *testing.T) {
	p, sa := newSA(core.Caps(core.LevelStimulus), Config{Seed: 4, Ticks: 1500})
	p.Run()
	if sa.store.Get("rate/0/0") != nil {
		t.Fatal("stimulus-only scheduler built interaction models")
	}
	if sa.store.Value("rate/global", 0) == 0 {
		t.Fatal("global rate estimate missing")
	}
}

func TestGoalSwitchReducesPower(t *testing.T) {
	gsw := goals.NewSwitcher(perfGoalT())
	gsw.ScheduleSwitch(3000, powerGoalT())
	sa := NewSelfAware(core.FullStack, gsw)
	p := New(Config{Seed: 5, Ticks: 6000}, sa)
	sa.Bind(p)
	var e1 float64
	for i := 0; i < 6000; i++ {
		p.Step()
		if i == 2999 {
			e1 = p.EnergyTotal()
		}
	}
	powerPhase1 := e1 / 3000
	powerPhase2 := (p.EnergyTotal() - e1) / 3000
	if powerPhase2 >= powerPhase1 {
		t.Fatalf("powersave phase did not reduce power: %v -> %v", powerPhase1, powerPhase2)
	}
}

func TestMetaDetectsThrottleDrift(t *testing.T) {
	p, sa := newSA(core.FullStack, Config{Seed: 6, Ticks: 6000, ThrottleAt: 3000})
	p.Run()
	if sa.Adaptations == 0 {
		t.Fatal("meta level never adapted to thermal throttling")
	}
}

func TestNoMetaNoAdaptations(t *testing.T) {
	caps := core.FullStack.Without(core.LevelMeta)
	p, sa := newSA(caps, Config{Seed: 6, Ticks: 4000, ThrottleAt: 2000})
	p.Run()
	if sa.Adaptations != 0 {
		t.Fatal("non-meta scheduler reported adaptations")
	}
}

func TestSelfAwareBeatsRoundRobinLatency(t *testing.T) {
	cfg := Config{Seed: 7, Ticks: 4000}
	p1, _ := newSA(core.FullStack, cfg)
	r1 := p1.Run()
	p2 := New(cfg, &RoundRobin{})
	r2 := p2.Run()
	if r1.MeanLatency >= r2.MeanLatency {
		t.Fatalf("self-aware latency %v not better than round-robin %v",
			r1.MeanLatency, r2.MeanLatency)
	}
}

func TestWindowMetricsResets(t *testing.T) {
	p := New(Config{Seed: 8, Ticks: 10}, &Governor{})
	for i := 0; i < 200; i++ {
		p.Step()
	}
	m1 := p.WindowMetrics(200)
	if m1["throughput"] <= 0 {
		t.Fatal("no throughput in first window")
	}
	m2 := p.WindowMetrics(1)
	if m2["throughput"] != 0 {
		t.Fatal("window did not reset")
	}
	for _, key := range []string{"throughput", "miss-rate", "mean-latency", "power"} {
		if _, ok := m1[key]; !ok {
			t.Fatalf("metric %q missing", key)
		}
	}
}

func TestBurstyWorkloadRuns(t *testing.T) {
	cfg := Config{Seed: 9, Ticks: 2000,
		ArrivalRate: &env.Clamp{Base: &env.Sine{Base: 0.6, Amplitude: 0.35, Period: 400}, Min: 0.05, Max: 2}}
	p, _ := newSA(core.FullStack, cfg)
	r := p.Run()
	if r.Done == 0 {
		t.Fatal("bursty run completed nothing")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (StaticMax{}).Name() != "static-max" || (&RoundRobin{}).Name() != "round-robin" ||
		(&Governor{}).Name() != "governor" {
		t.Fatal("baseline names")
	}
	sa := NewSelfAware(core.FullStack, goals.NewSwitcher(perfGoalT()))
	if sa.Name() != "self-aware" {
		t.Fatal("self-aware name")
	}
	sa.Label = "custom"
	if sa.Name() != "custom" {
		t.Fatal("label override")
	}
}
