package camnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfidenceGeometry(t *testing.T) {
	c := newCamera(0, Vec{50, 50}, 10, ActiveBroadcast)
	atCentre := c.Confidence(&Object{Pos: Vec{50, 50}})
	if math.Abs(atCentre-1) > 1e-12 {
		t.Fatalf("confidence at centre = %v", atCentre)
	}
	outside := c.Confidence(&Object{Pos: Vec{70, 50}})
	if outside != 0 {
		t.Fatalf("confidence outside range = %v", outside)
	}
	edge := c.Confidence(&Object{Pos: Vec{59.99, 50}})
	if edge <= 0 || edge >= 0.01 {
		t.Fatalf("confidence near edge = %v", edge)
	}
	// Monotone decreasing with distance.
	prev := 1.0
	for d := 1.0; d < 10; d++ {
		conf := c.Confidence(&Object{Pos: Vec{50 + d, 50}})
		if conf >= prev {
			t.Fatalf("confidence not decreasing at distance %v", d)
		}
		prev = conf
	}
}

func TestStrategyProperties(t *testing.T) {
	if !ActiveBroadcast.active() || !ActiveBroadcast.broadcast() {
		t.Fatal("active-broadcast flags")
	}
	if PassiveNeighbors.active() || PassiveNeighbors.broadcast() {
		t.Fatal("passive-neighbors flags")
	}
	if ActiveNeighbors.String() != "active-neighbors" {
		t.Fatal("strategy string")
	}
	if Strategy(99).String() == "active-broadcast" {
		t.Fatal("out-of-range strategy string")
	}
}

func TestEntropyBounds(t *testing.T) {
	homog := make([]*Camera, 10)
	for i := range homog {
		homog[i] = newCamera(i, Vec{}, 1, PassiveBroadcast)
	}
	if Entropy(homog) != 0 {
		t.Fatalf("homogeneous entropy = %v", Entropy(homog))
	}
	uniform := make([]*Camera, 8)
	for i := range uniform {
		uniform[i] = newCamera(i, Vec{}, 1, Strategy(i%NumStrategies))
	}
	if math.Abs(Entropy(uniform)-1) > 1e-12 {
		t.Fatalf("uniform entropy = %v", Entropy(uniform))
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cams := make([]*Camera, len(raw))
		for i, r := range raw {
			cams[i] = newCamera(i, Vec{}, 1, Strategy(int(r)%NumStrategies))
		}
		h := Entropy(cams)
		return h >= 0 && h <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectWaypointMovement(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, Cameras: 4, Objects: 5, Ticks: 10})
	o := n.Objs[0]
	for i := 0; i < 200; i++ {
		prev := o.Pos
		o.step(100, 100, n.rng)
		d := o.Pos.sub(prev)
		if dist := math.Sqrt(d.norm2()); dist > o.Speed+1e-9 {
			t.Fatalf("object moved %v > speed %v", dist, o.Speed)
		}
		if o.Pos.X < 0 || o.Pos.X > 100 || o.Pos.Y < 0 || o.Pos.Y > 100 {
			t.Fatalf("object escaped world: %+v", o.Pos)
		}
	}
}

func TestNetworkInvariants(t *testing.T) {
	n := NewNetwork(Config{Seed: 2, Cameras: 9, Objects: 12, Ticks: 500})
	for i := 0; i < 500; i++ {
		n.Step()
		for _, o := range n.Objs {
			if o.Owner >= len(n.Cams) {
				t.Fatalf("invalid owner %d", o.Owner)
			}
		}
	}
	r := n.Result()
	if r.Coverage < 0 || r.Coverage > 1 {
		t.Fatalf("coverage out of range: %v", r.Coverage)
	}
	if r.Utility < 0 || r.Messages < 0 {
		t.Fatal("negative totals")
	}
	if n.ObjectTicks != 12*500 {
		t.Fatalf("object ticks = %d", n.ObjectTicks)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		return NewNetwork(Config{Seed: 7, Cameras: 9, Objects: 10, Ticks: 400, SelfAware: true}).Run()
	}
	a, b := run(), run()
	if a.Utility != b.Utility || a.Messages != b.Messages || a.Entropy != b.Entropy {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}

func TestHandoversBuildVisionGraph(t *testing.T) {
	n := NewNetwork(Config{Seed: 3, Cameras: 9, Objects: 12, Ticks: 1500, Fixed: PassiveBroadcast})
	n.Run()
	if n.Handovers == 0 {
		t.Fatal("no handovers in 1500 ticks")
	}
	links := 0
	for _, c := range n.Cams {
		links += len(c.neighbors())
	}
	if links == 0 {
		t.Fatal("handovers did not build the vision graph")
	}
}

func TestBroadcastCostsMoreThanNeighbors(t *testing.T) {
	broadcast := NewNetwork(Config{Seed: 4, Cameras: 16, Objects: 15, Ticks: 2000, Fixed: ActiveBroadcast}).Run()
	neighbors := NewNetwork(Config{Seed: 4, Cameras: 16, Objects: 15, Ticks: 2000, Fixed: ActiveNeighbors}).Run()
	if broadcast.Messages <= neighbors.Messages {
		t.Fatalf("broadcast (%v msgs) should cost more than neighbors (%v msgs)",
			broadcast.Messages, neighbors.Messages)
	}
	if broadcast.Utility < neighbors.Utility {
		t.Fatalf("broadcast utility (%v) should be at least neighbour utility (%v)",
			broadcast.Utility, neighbors.Utility)
	}
}

func TestSelfAwareLearnsHeterogeneity(t *testing.T) {
	r := NewNetwork(Config{Seed: 5, Cameras: 16, Objects: 20, Ticks: 3000, SelfAware: true}).Run()
	if r.Entropy == 0 {
		t.Fatal("self-aware network stayed homogeneous")
	}
	if r.Coverage < 0.5 {
		t.Fatalf("self-aware coverage too low: %v", r.Coverage)
	}
}

func TestSelfAwareBeatsWorstStaticEfficiency(t *testing.T) {
	sa := NewNetwork(Config{Seed: 6, Cameras: 16, Objects: 20, Ticks: 3000, SelfAware: true}).Run()
	worst := NewNetwork(Config{Seed: 6, Cameras: 16, Objects: 20, Ticks: 3000, Fixed: ActiveBroadcast}).Run()
	if sa.UtilPerMsg <= worst.UtilPerMsg {
		t.Fatalf("self-aware util/msg (%v) should beat active-broadcast (%v)",
			sa.UtilPerMsg, worst.UtilPerMsg)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Utility: 1, Messages: 2, UtilPerMsg: 0.5, Coverage: 0.9, Entropy: 0.1}
	if r.String() == "" {
		t.Fatal("empty result string")
	}
}
