package population

import (
	"strconv"

	"sacs/internal/obs"
)

// Metrics is the population engine's observability plane: per-tick phase
// timing counters, per-shard step-duration and mailbox-depth histograms,
// and the tick counter, all labelled with the population's name. Attach one
// via Config.Metrics (nil disables instrumentation entirely — the engine
// then takes no timestamps at all).
//
// Metrics are observation-only: no metric value is ever an input to
// stepping, routing or snapshots, so an instrumented run is byte-identical
// to an uninstrumented one. They are also deliberately excluded from
// Snapshot — wall-clock timings are a property of the host, not the
// simulation, and folding them into checkpoint bytes would break the
// equal-state ⇒ equal-bytes contract.
//
// The tick's wall time decomposes at the engine's natural seams:
//
//	step    — Σ per-shard busy time / pool workers: the compute the tick
//	          actually needed, normalised to the concurrency available
//	barrier — transport Step wall time minus step: time shards spent waiting
//	          on the slowest sibling (plus fan-out overhead). This is the
//	          number that explains a flat workers=1→4 scaling curve.
//	route   — the engine's single-threaded barrier work: merging exchanges,
//	          routing messages into next-tick mailboxes, recycling
//	snapshot — Engine.Snapshot export+copy time (counted per call, not per
//	          tick)
type Metrics struct {
	reg *obs.Registry // retained for the lazily sized per-shard gauges
	pop string

	ticks    *obs.Counter
	lastTick *obs.Gauge
	steals   *obs.Counter // shards claimed off their planned executor (see Scheduler)

	phaseStep    *obs.Counter // ns, rendered as seconds
	phaseBarrier *obs.Counter
	phaseRoute   *obs.Counter
	phaseSnap    *obs.Counter

	shardStep *obs.Histogram // per-shard busy ns per tick
	mailDepth *obs.Histogram // stimuli delivered into one shard per tick

	// shardCost gauges (nanos, rendered seconds) are registered on the
	// first tick, when the engine's shard count is known — Metrics is
	// built from a name alone, before any Config exists.
	shardCost []*obs.Gauge
}

// NewMetrics registers the population metric families on reg, labelled
// {pop="<pop>"}, and returns the instrument set. Registration is idempotent
// (see obs.Registry), so re-hosting the same population re-attaches to the
// same series. A nil registry returns nil, which Config.Metrics treats as
// "not instrumented".
func NewMetrics(reg *obs.Registry, pop string) *Metrics {
	if reg == nil {
		return nil
	}
	p := obs.L("pop", pop)
	m := &Metrics{
		reg: reg,
		pop: pop,
		ticks: reg.Counter("sacs_population_ticks_total",
			"ticks advanced", p),
		lastTick: reg.Gauge("sacs_population_tick",
			"current tick (next to execute)", p),
		steals: reg.Counter("sacs_population_sched_steal_total",
			"shards executed off their planned executor by intra-tick work stealing", p),
		shardStep: reg.Histogram("sacs_population_shard_step_seconds",
			"busy time of one shard's step, per shard per tick",
			obs.Seconds, obs.DurationBounds(), p),
		mailDepth: reg.Histogram("sacs_population_shard_mailbox_depth",
			"stimuli delivered into one shard's agents, per shard per tick",
			1, obs.SizeBounds(), p),
	}
	phase := func(name string) *obs.Counter {
		return reg.ScaledCounter("sacs_population_phase_seconds_total",
			"cumulative tick wall time by phase (step/barrier/route/snapshot)",
			obs.Seconds, p, obs.L("phase", name))
	}
	m.phaseStep = phase("step")
	m.phaseBarrier = phase("barrier")
	m.phaseRoute = phase("route")
	m.phaseSnap = phase("snapshot")
	return m
}

// observeCosts publishes the engine's per-shard cost estimates, registering
// the gauge family {pop,shard} on first use (idempotently, like every obs
// registration — re-hosting re-attaches to the same series).
func (m *Metrics) observeCosts(c *CostModel) {
	if m.shardCost == nil {
		m.shardCost = make([]*obs.Gauge, c.Shards())
		p := obs.L("pop", m.pop)
		for s := range m.shardCost {
			m.shardCost[s] = m.reg.ScaledGauge("sacs_population_shard_cost_seconds",
				"per-shard step-cost estimate driving the dispatch order (EWMA of step time)",
				obs.Seconds, p, obs.L("shard", strconv.Itoa(s)))
		}
	}
	for s, g := range m.shardCost {
		g.Set(int64(c.Estimate(s)))
	}
}

// MetricsSnapshot is the typed, JSON-friendly view of a population's
// metrics — what serve embeds into Status so clients get the engine's
// timing decomposition next to its logical counters.
type MetricsSnapshot struct {
	Ticks int64 `json:"ticks"`

	// Steals counts shards executed off their planned executor by
	// intra-tick work stealing (cumulative; see Scheduler).
	Steals int64 `json:"sched_steals"`

	// Cumulative per-phase wall time, seconds (see Metrics for the phase
	// decomposition).
	StepSeconds     float64 `json:"step_seconds"`
	BarrierSeconds  float64 `json:"barrier_seconds"`
	RouteSeconds    float64 `json:"route_seconds"`
	SnapshotSeconds float64 `json:"snapshot_seconds"`

	ShardStepSeconds  obs.HistogramValue `json:"shard_step_seconds"`
	ShardMailboxDepth obs.HistogramValue `json:"shard_mailbox_depth"`

	// ShardCostSeconds is the per-shard dispatch cost estimate (absent
	// until the first instrumented tick) — the scheduler's live view, and
	// the input a future rebalancer would read over HTTP.
	ShardCostSeconds []float64 `json:"shard_cost_seconds,omitempty"`
}

// Snapshot captures the instruments' current values. Nil-safe: a nil
// Metrics yields a nil snapshot (rendered as absent by encoding/json).
func (m *Metrics) Snapshot() *MetricsSnapshot {
	if m == nil {
		return nil
	}
	s := &MetricsSnapshot{
		Ticks:             m.ticks.Value(),
		Steals:            m.steals.Value(),
		StepSeconds:       float64(m.phaseStep.Value()) * obs.Seconds,
		BarrierSeconds:    float64(m.phaseBarrier.Value()) * obs.Seconds,
		RouteSeconds:      float64(m.phaseRoute.Value()) * obs.Seconds,
		SnapshotSeconds:   float64(m.phaseSnap.Value()) * obs.Seconds,
		ShardStepSeconds:  m.shardStep.Value(obs.Seconds),
		ShardMailboxDepth: m.mailDepth.Value(1),
	}
	if m.shardCost != nil {
		s.ShardCostSeconds = make([]float64, len(m.shardCost))
		for i, g := range m.shardCost {
			s.ShardCostSeconds[i] = float64(g.Value()) * obs.Seconds
		}
	}
	return s
}

// Metrics returns the engine's attached instrument set (nil when the
// engine is uninstrumented).
func (e *Engine) Metrics() *Metrics { return e.cfg.Metrics }
