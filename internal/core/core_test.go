package core

import (
	"strings"
	"testing"

	"sacs/internal/goals"
	"sacs/internal/knowledge"
)

func TestCapabilities(t *testing.T) {
	c := Caps(LevelStimulus, LevelGoal)
	if !c.Has(LevelStimulus) || !c.Has(LevelGoal) || c.Has(LevelTime) {
		t.Fatal("Caps membership wrong")
	}
	c = c.With(LevelTime)
	if !c.Has(LevelTime) {
		t.Fatal("With failed")
	}
	c = c.Without(LevelGoal)
	if c.Has(LevelGoal) {
		t.Fatal("Without failed")
	}
	if FullStack.String() != "stimulus+interaction+time+goal+meta" {
		t.Fatalf("FullStack string = %q", FullStack.String())
	}
	if Capabilities(0).String() != "none" {
		t.Fatal("empty capability string")
	}
	if LevelMeta.String() != "meta" || Level(99).String() == "meta" {
		t.Fatal("level strings")
	}
}

func TestScalarSensor(t *testing.T) {
	s := ScalarSensor("temp", Public, func(now float64) float64 { return now * 2 })
	if s.Name() != "temp" {
		t.Fatal("sensor name")
	}
	batch := s.Sense(3)
	if len(batch) != 1 || batch[0].Value != 6 || batch[0].Scope != Public || batch[0].Time != 3 {
		t.Fatalf("sensed %+v", batch)
	}
}

func TestActionString(t *testing.T) {
	a := Action{Name: "set-freq", Target: "core1", Value: 2}
	if !strings.Contains(a.String(), "core1") {
		t.Fatal("action string missing target")
	}
	b := Action{Name: "go", Value: 1.5}
	if !strings.Contains(b.String(), "1.5") {
		t.Fatal("action string missing value")
	}
}

func mkAgent(caps Capabilities, gsw *goals.Switcher) (*Agent, *float64) {
	val := new(float64)
	return New(Config{
		Name:  "t",
		Caps:  caps,
		Goals: gsw,
		Sensors: []Sensor{
			ScalarSensor("x", Private, func(float64) float64 { return *val }),
		},
	}), val
}

func TestLevelGatingCreatesModels(t *testing.T) {
	full, v := mkAgent(FullStack, nil)
	*v = 5
	for i := 0; i < 10; i++ {
		full.Step(float64(i), nil)
	}
	if full.Store().Value("stim/x", -1) != 5 {
		t.Fatal("stimulus model missing")
	}
	if full.Store().Get("pred/x") == nil {
		t.Fatal("full-stack agent should have time-awareness predictions")
	}

	low, v2 := mkAgent(Caps(LevelStimulus), nil)
	*v2 = 5
	for i := 0; i < 10; i++ {
		low.Step(float64(i), nil)
	}
	if low.Store().Get("pred/x") != nil {
		t.Fatal("stimulus-only agent must not build predictions")
	}
	if low.Meta() != nil {
		t.Fatal("stimulus-only agent must not have a meta monitor")
	}
	if full.Meta() == nil {
		t.Fatal("full-stack agent should have a meta monitor")
	}
}

func TestGoalProcessTracksUtilityAndSwitches(t *testing.T) {
	g1 := goals.NewSet("g1", goals.Objective{Name: "m", Direction: goals.Maximize, Weight: 1})
	g2 := goals.NewSet("g2", goals.Objective{Name: "m", Direction: goals.Minimize, Weight: 1})
	sw := goals.NewSwitcher(g1)
	sw.ScheduleSwitch(5, g2)
	a, _ := mkAgent(FullStack, sw)

	a.Step(0, map[string]float64{"m": 3})
	if u := a.Store().Value("goal/utility", -99); u != 3 {
		t.Fatalf("utility under g1 = %v, want 3", u)
	}
	a.Step(6, map[string]float64{"m": 3})
	if u := a.Store().Value("goal/utility", -99); u != -3 {
		t.Fatalf("utility under g2 = %v, want -3", u)
	}
	if s := a.Store().Value("goal/switches", -1); s != 1 {
		t.Fatalf("goal/switches = %v", s)
	}
}

func TestInteractionProcessModelsPeers(t *testing.T) {
	a, _ := mkAgent(FullStack, nil)
	a.Inject(1, []Stimulus{
		{Name: "load", Source: "peer-7", Scope: Public, Value: 0.8, Time: 1},
		{Name: "own", Source: "t", Scope: Private, Value: 0.1, Time: 1},
	})
	if v := a.Store().Value("peer/peer-7/load", -1); v != 0.8 {
		t.Fatalf("peer model = %v", v)
	}
	if a.Store().Get("peer/t/own") != nil {
		t.Fatal("own stimuli must not create peer models")
	}
	if n := a.Store().Value("interactions", -1); n != 1 {
		t.Fatalf("interaction count = %v", n)
	}
}

func TestReasonerEffectorLoop(t *testing.T) {
	executed := []Action{}
	agent := New(Config{
		Name: "loop",
		Sensors: []Sensor{
			ScalarSensor("s", Private, func(float64) float64 { return 2 }),
		},
		Reasoner: ReasonerFunc{ReasonerName: "r", Fn: func(d *Decision) {
			v := d.Consult("stim/s", 0)
			d.Choose(Action{Name: "act", Value: v * 10}, "because s=%v", v)
		}},
		Effectors: []Effector{EffectorFunc{EffectorName: "act", Fn: func(a Action) error {
			executed = append(executed, a)
			return nil
		}}},
	})
	acts := agent.Step(0, nil)
	if len(acts) != 1 || len(executed) != 1 || executed[0].Value != 20 {
		t.Fatalf("effector loop: %v %v", acts, executed)
	}
	if agent.Explainer().Len() != 1 {
		t.Fatal("decision not recorded")
	}
	why := agent.Explainer().WhyLast()
	if !strings.Contains(why, "stim/s") || !strings.Contains(why, "because s=2") {
		t.Fatalf("explanation incomplete: %s", why)
	}
}

func TestUnroutedActionReported(t *testing.T) {
	agent := New(Config{
		Name: "u",
		Reasoner: ReasonerFunc{ReasonerName: "r", Fn: func(d *Decision) {
			d.Choose(Action{Name: "nonexistent"}, "testing")
		}},
		Effectors: []Effector{EffectorFunc{EffectorName: "real", Fn: func(Action) error { return nil }}},
	})
	agent.Step(0, nil)
	why := agent.Explainer().WhyLast()
	if !strings.Contains(why, "no effector") {
		t.Fatalf("unrouted action not reported: %s", why)
	}
}

func TestAgentDescribe(t *testing.T) {
	a, _ := mkAgent(Caps(LevelStimulus, LevelTime), nil)
	a.Step(0, nil)
	desc := a.Describe(0)
	for _, want := range []string{"agent t", "stimulus+time", "steps=1"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("describe missing %q: %s", want, desc)
		}
	}
}

func TestAgentRequiresName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nameless agent did not panic")
		}
	}()
	New(Config{})
}

func TestAddSensorAtRuntime(t *testing.T) {
	a, _ := mkAgent(FullStack, nil)
	a.AddSensor(ScalarSensor("late", Private, func(float64) float64 { return 9 }))
	a.Step(0, nil)
	if a.Store().Value("stim/late", -1) != 9 {
		t.Fatal("run-time sensor not integrated")
	}
}

func TestMAPEKRules(t *testing.T) {
	m := NewMAPEK(
		Rule{Name: "scale-up", When: func(k map[string]float64) bool { return k["load"] > 0.8 },
			Then: Action{Name: "up"}},
		Rule{Name: "scale-down", When: func(k map[string]float64) bool { return k["load"] < 0.2 },
			Then: Action{Name: "down"}},
	)
	acts := m.Step(0, map[string]float64{"load": 0.9})
	if len(acts) != 1 || acts[0].Name != "up" {
		t.Fatalf("rule firing wrong: %v", acts)
	}
	acts = m.Step(1, map[string]float64{"load": 0.5})
	if len(acts) != 0 {
		t.Fatalf("no rule should fire at 0.5: %v", acts)
	}
	if m.Fired != 1 {
		t.Fatalf("Fired = %d", m.Fired)
	}
	if !strings.Contains(m.String(), "2 rules") {
		t.Fatal("MAPEK String")
	}
	if m.Knowledge["load"] != 0.5 {
		t.Fatal("knowledge not refreshed")
	}
}

func TestDecisionCandidates(t *testing.T) {
	d := &Decision{Now: 1}
	if _, _, ok := d.BestCandidate(); ok {
		t.Fatal("empty decision has no best candidate")
	}
	d.Score("a", 1)
	d.Score("b", 5)
	d.Score("c", 3)
	label, score, ok := d.BestCandidate()
	if !ok || label != "b" || score != 5 {
		t.Fatalf("best candidate = %v %v %v", label, score, ok)
	}
	if !strings.Contains(d.Explain(), "no action") {
		t.Fatal("inaction should be explained")
	}
}

func TestExplainerRingRecency(t *testing.T) {
	e := NewExplainer(3)
	if e.Last() != nil {
		t.Fatal("empty explainer Last should be nil")
	}
	for i := 0; i < 5; i++ {
		e.Record(&Decision{Now: float64(i)})
	}
	if e.Len() != 3 || e.Recorded != 5 {
		t.Fatalf("len=%d recorded=%d", e.Len(), e.Recorded)
	}
	if e.Last().Now != 4 {
		t.Fatalf("Last().Now = %v", e.Last().Now)
	}
	recent := e.Recent(2)
	if len(recent) != 2 || recent[0].Now != 4 || recent[1].Now != 3 {
		t.Fatalf("Recent order wrong: %v %v", recent[0].Now, recent[1].Now)
	}
	tr := e.Transcript(3)
	if strings.Count(tr, "\n") != 3 {
		t.Fatalf("transcript lines: %q", tr)
	}
	if NewExplainer(0).depth != 32 {
		t.Fatal("default depth")
	}
}

func TestKnowledgeScopeAlias(t *testing.T) {
	// The core package must expose the knowledge scopes unchanged.
	if Private != knowledge.Private || Public != knowledge.Public {
		t.Fatal("scope aliases broken")
	}
}
