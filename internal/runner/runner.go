package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"sacs/internal/trace"
)

// Key identifies a job: which experiment, which system/variant row, and
// which RNG seed index it owns.
type Key struct {
	Experiment string
	System     string
	Seed       int
}

func (k Key) String() string {
	s := k.Experiment
	if s == "" {
		s = "?"
	}
	if k.System != "" {
		s += "/" + k.System
	}
	return fmt.Sprintf("%s#%d", s, k.Seed)
}

// Result is one completed job's outcome. Index is the job's position in its
// batch — the merge order — not the order it finished in.
type Result struct {
	Index   int
	Key     Key
	Value   any
	Err     error
	Elapsed time.Duration
}

// Progress is a snapshot delivered to Pool.OnProgress after each completion.
type Progress struct {
	Key     Key           // the job that just finished
	Done    int           // jobs completed so far, pool-wide
	Total   int           // jobs submitted so far, pool-wide
	Elapsed time.Duration // since the pool's first submission
	ETA     time.Duration // naive estimate of remaining wall time
	JobTime time.Duration // the finished job's own elapsed time
}

// Pool is a bounded-concurrency job dispatcher. Concurrency is bounded by
// the worker count passed to New: one slot belongs to whichever goroutine
// is waiting on a batch (Wait executes jobs itself), so New spawns
// workers-1 background goroutines.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   []*task
	closed  bool
	workers int
	wg      sync.WaitGroup

	started time.Time
	done    int
	total   int

	// OnProgress, when non-nil, is invoked after every job completes,
	// before the job is marked done — Batch.Wait returns only once the
	// callbacks for all its jobs have run. It may be called from several
	// goroutines at once and must be safe for that (NewReporter returns a
	// suitable callback). It must not call back into the pool. Set it
	// before submitting work.
	OnProgress func(Progress)
	// Trace, when non-nil, records one point per completed job in the
	// series "runner/<experiment>": x is the job's batch index, y its
	// elapsed seconds. Set it before submitting work.
	Trace *trace.Recorder
}

type task struct {
	batch      *Batch
	index      int
	key        Key
	fn         func() (any, error)
	waiting    int // unfinished dependencies
	dependents []*task
	done       bool
	result     Result
}

// New creates a pool that runs at most workers jobs at once; workers <= 0
// means runtime.GOMAXPROCS(0). Close releases the background goroutines
// when all batches have been waited on. New(1) is the serial mode: no
// goroutines are spawned and every job runs inline in Batch.Wait.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers-1; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Close drains the queue and stops the background workers. It is
// idempotent. Call it only after every batch has been waited on.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Batch is an ordered set of jobs submitted to one pool. Jobs may depend on
// earlier jobs in the same batch; the dispatcher only starts a job once its
// dependencies have finished.
type Batch struct {
	pool    *Pool
	tasks   []*task
	pending int
}

// NewBatch starts an empty batch on the pool.
func (p *Pool) NewBatch() *Batch { return &Batch{pool: p} }

// Add appends a job and returns its index. deps lists indices of
// previously added jobs in this batch that must finish first; referencing
// this job or a later one panics, which keeps the dependency graph a DAG
// by construction (no cycle detection needed, no scheduling deadlock
// possible). Eligible jobs may start running before Add returns.
func (b *Batch) Add(key Key, deps []int, fn func() (any, error)) int {
	p := b.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := len(b.tasks)
	t := &task{batch: b, index: idx, key: key, fn: fn}
	for _, d := range deps {
		if d < 0 || d >= idx {
			panic(fmt.Sprintf("runner: job %d (%s) depends on job %d; dependencies must name earlier jobs in the batch", idx, key, d))
		}
		dt := b.tasks[d]
		if !dt.done {
			t.waiting++
			dt.dependents = append(dt.dependents, t)
		}
	}
	b.tasks = append(b.tasks, t)
	b.pending++
	p.total++
	if p.started.IsZero() {
		p.started = time.Now()
	}
	if t.waiting == 0 {
		p.ready = append(p.ready, t)
		p.cond.Broadcast()
	}
	return idx
}

// Len reports how many jobs have been added to the batch.
func (b *Batch) Len() int {
	b.pool.mu.Lock()
	defer b.pool.mu.Unlock()
	return len(b.tasks)
}

// Wait blocks until every job in the batch has finished and returns their
// results in index order. While blocked, the calling goroutine executes
// ready jobs itself (from this batch or any other on the pool), so nested
// fan-out — a job waiting on a sub-batch of the same pool — cannot
// deadlock.
func (b *Batch) Wait() []Result {
	p := b.pool
	p.mu.Lock()
	for b.pending > 0 {
		if t := p.popLocked(); t != nil {
			p.mu.Unlock()
			p.run(t)
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	out := make([]Result, len(b.tasks))
	for i, t := range b.tasks {
		out[i] = t.result
	}
	p.mu.Unlock()
	return out
}

// Errors collects the failures in a result set into one error (nil when
// every job succeeded).
func Errors(rs []Result) error {
	var errs []error
	for _, r := range rs {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Key, r.Err))
		}
	}
	return errors.Join(errs...)
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		t := p.popLocked()
		if t == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		p.run(t)
		p.mu.Lock()
	}
}

func (p *Pool) popLocked() *task {
	if len(p.ready) == 0 {
		return nil
	}
	t := p.ready[0]
	p.ready = p.ready[1:]
	return t
}

// run executes one job with panic recovery, records its result and timing,
// reports progress, then releases its dependents and marks the job done.
// Trace and OnProgress are delivered strictly before the job counts as
// complete, so when Batch.Wait returns every callback for the batch's jobs
// has already run — callers may read state the callbacks accumulate.
func (p *Pool) run(t *task) {
	start := time.Now()
	v, err := protect(t.key, t.fn)
	elapsed := time.Since(start)
	t.result = Result{Index: t.index, Key: t.key, Value: v, Err: err, Elapsed: elapsed}

	p.mu.Lock()
	p.done++
	done, total := p.done, p.total
	poolElapsed := time.Since(p.started)
	p.mu.Unlock()

	if p.Trace != nil {
		p.Trace.Record("runner/"+t.key.Experiment, float64(t.index), elapsed.Seconds())
	}
	if f := p.OnProgress; f != nil {
		var eta time.Duration
		if done > 0 && done < total {
			eta = time.Duration(float64(poolElapsed) / float64(done) * float64(total-done))
		}
		f(Progress{Key: t.key, Done: done, Total: total, Elapsed: poolElapsed, ETA: eta, JobTime: elapsed})
	}

	p.mu.Lock()
	t.done = true
	for _, d := range t.dependents {
		d.waiting--
		if d.waiting == 0 {
			p.ready = append(p.ready, d)
		}
	}
	t.dependents = nil
	t.batch.pending--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// protect runs fn, converting a panic into an error that carries the job
// key and the stack, so one bad simulation run cannot take down the suite.
func protect(key Key, fn func() (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %s panicked: %v\n%s", key, r, debug.Stack())
		}
	}()
	return fn()
}
