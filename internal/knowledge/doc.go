// Package knowledge implements the self-model store at the heart of the
// framework: named, scoped models with confidence, provenance and bounded
// history. The paper's definition of self-awareness — knowledge of internal
// state, history, environment and goals — is realised as entries in this
// store, which the reasoner reads, the learners write, and the explainer
// cites.
//
// Two hot-path facilities keep per-tick model access cheap (see DESIGN.md
// "Hot-path performance"): names can be interned into dense Key handles so
// steady-state loops never hash or concatenate strings, and a store with a
// single owning goroutine can be marked Unshared to elide the registry
// lock, the per-entry locks and the atomic instrumentation counters that
// shared (collective) stores keep.
package knowledge
