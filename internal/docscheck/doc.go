// Package docscheck is the repository's documentation linter, run as
// ordinary Go tests so CI needs no external tools: it verifies that every
// relative link in the repo's Markdown files resolves to a real file, and
// that every exported identifier of the public selfaware facade carries a
// doc comment (the stdlib-flavoured equivalent of revive's "exported"
// rule). It ships no library code — the checks live in the test binary.
package docscheck
