package knowledge

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Scope distinguishes private self-knowledge (internal phenomena: own load,
// own error rates) from public self-knowledge (externally visible phenomena:
// the agent's role, impact and appearance in the world). This is the paper's
// first framework concept (§IV).
type Scope int

// Scope values.
const (
	Private Scope = iota
	Public
)

// String returns "private" or "public".
func (s Scope) String() string {
	if s == Public {
		return "public"
	}
	return "private"
}

// Entry is one model in the store: a scalar estimate with uncertainty,
// bounded history, and bookkeeping for explanation. All methods are safe
// for concurrent use unless the owning store has been marked Unshared;
// Name and Scope are immutable after creation.
type Entry struct {
	Name  string
	Scope Scope

	mu         sync.RWMutex
	noLock     bool // single-owner store: locking elided (see Store.Unshared)
	value      float64
	variance   float64
	alpha      float64 // EWMA factor for value/variance tracking; immutable
	n          int
	lastUpdate float64 // virtual time of last update
	hist       *Ring   // guarded by mu; the pointer itself is immutable
}

// Value returns the current estimate.
func (e *Entry) Value() float64 {
	if e.noLock {
		return e.value
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.value
}

// Variance returns the EWMA-tracked variance of observations around the
// estimate, a cheap volatility signal used by attention and meta levels.
func (e *Entry) Variance() float64 {
	if e.noLock {
		return e.variance
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.variance
}

// Updates returns how many observations the entry has absorbed.
func (e *Entry) Updates() int {
	if e.noLock {
		return e.n
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.n
}

// LastUpdate returns the virtual time of the last observation.
func (e *Entry) LastUpdate() float64 {
	if e.noLock {
		return e.lastUpdate
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lastUpdate
}

// Confidence maps freshness and sample count to [0, 1]: zero observations
// give 0; confidence grows with n and is discounted by staleness.
func (e *Entry) Confidence(now float64) float64 {
	if e.noLock {
		return e.confidenceLocked(now)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.confidenceLocked(now)
}

func (e *Entry) confidenceLocked(now float64) float64 {
	if e.n == 0 {
		return 0
	}
	sample := 1 - 1/math.Sqrt(float64(e.n)+1)
	age := now - e.lastUpdate
	fresh := math.Exp(-age / 100)
	return sample * fresh
}

// History returns a point-in-time copy of the entry's bounded history, or
// nil if the store was created without history. The copy is private to the
// caller, so it stays consistent under concurrent Observe/Set; hot paths
// that only need the slope should call Trend, which allocates nothing.
func (e *Entry) History() *Ring {
	if !e.noLock {
		e.mu.RLock()
		defer e.mu.RUnlock()
	}
	if e.hist == nil {
		return nil
	}
	c := Ring{
		t:    append([]float64(nil), e.hist.t...),
		v:    append([]float64(nil), e.hist.v...),
		head: e.hist.head,
		size: e.hist.size,
		max:  e.hist.max,
	}
	return &c
}

// Trend returns the least-squares slope over the entry's history window
// without copying it; ok is false when the store keeps no history.
func (e *Entry) Trend() (slope float64, ok bool) {
	if e.hist == nil {
		return 0, false
	}
	if e.noLock {
		return e.hist.Trend(), true
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.hist.Trend(), true
}

// Observe folds a new observation in at virtual time now.
func (e *Entry) Observe(x, now float64) {
	if e.noLock {
		e.observeLocked(x, now)
		return
	}
	e.mu.Lock()
	e.observeLocked(x, now)
	e.mu.Unlock()
}

func (e *Entry) observeLocked(x, now float64) {
	if e.n == 0 {
		e.value = x
	} else {
		d := x - e.value
		e.value += e.alpha * d
		e.variance += e.alpha * (d*d - e.variance)
	}
	e.n++
	e.lastUpdate = now
	if e.hist != nil {
		e.hist.Push(now, x)
	}
}

// valueOr returns the entry's estimate, or def when it has never been
// updated: the shared core of Store.Value and Store.ValueKey.
func (e *Entry) valueOr(def float64) float64 {
	if !e.noLock {
		e.mu.RLock()
		defer e.mu.RUnlock()
	}
	if e.n == 0 {
		return def
	}
	return e.value
}

// Set overwrites the estimate without EWMA smoothing (for derived
// quantities computed by reasoning rather than sensed).
func (e *Entry) Set(x, now float64) {
	if e.noLock {
		e.setLocked(x, now)
		return
	}
	e.mu.Lock()
	e.setLocked(x, now)
	e.mu.Unlock()
}

func (e *Entry) setLocked(x, now float64) {
	e.value = x
	e.n++
	e.lastUpdate = now
	if e.hist != nil {
		e.hist.Push(now, x)
	}
}

// Key is a dense handle for a model name interned in one Store's symbol
// table: the per-tick loop resolves each name to a Key once (Intern or
// LookupKey) and thereafter reads and writes the model by slice index —
// no string concatenation, no map hashing. The zero Key is "not interned";
// valid keys are positive. Keys are permanent for the life of the store:
// deleting the model (Store.Delete) clears the entry behind the key, and a
// later ObserveKey/EnsureKey recreates it fresh, exactly as the string path
// would. Keys are store-local — never use a Key against a different Store.
type Key int32

// slot is what a Key indexes: the interned identity plus the live entry
// (nil when the model does not currently exist).
type slot struct {
	name  string
	scope Scope
	e     *Entry
}

// Store is a threadsafe registry of model entries keyed by name. The store
// lock guards the registry map and the symbol table only; each Entry
// carries its own lock, so concurrent observations of different models
// never contend and a single Observe acquires the registry lock at most
// once. Stores with exactly one owning goroutine can elide all of that —
// see Unshared.
type Store struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	keys    map[string]Key // symbol table: name -> Key (see Intern)
	slots   []slot         // Key k lives at slots[k-1]
	alpha   float64
	histLen int

	// unshared elides the registry lock, per-entry locks and atomic
	// counters; set only through Unshared, only while single-owner.
	unshared bool

	// Last-Get cache, used only when unshared (no lock protects it): hot
	// loops read the same model by the same constant string every tick, so
	// the repeat case is a pointer compare instead of a map hash.
	lastGetName string
	lastGet     *Entry

	// Entry arena: entries and their ring seed storage are carved from
	// per-store chunks (guarded by mu like the registry), so creating a
	// model — the dominant allocation of a populated run — costs a
	// fraction of an allocation instead of several. Chunks are never
	// reclaimed while the store lives; entries are permanent by design
	// (Delete unlinks, the Key machinery assumes slots persist).
	boxes []entryBox
	nbox  int
	slab  []float64

	reads  atomic.Int64 // instrumentation: model consultations (for E9 overhead)
	writes atomic.Int64
	// Unshared-mode instrumentation: plain counters, folded into
	// ReadCount/WriteCount alongside the atomics.
	readsU, writesU int64
}

// NewStore returns a store whose entries smooth with factor alpha and keep
// histLen historical points (histLen = 0 disables history).
func NewStore(alpha float64, histLen int) *Store {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &Store{entries: make(map[string]*Entry), alpha: alpha, histLen: histLen}
}

// Unshared marks the store single-owner: the registry lock, the per-entry
// locks and the atomic instrumentation counters are elided from every
// subsequent operation. The population engine sets this on each agent's
// private store (never on a store shared between agents), which removes
// all synchronization from the tick hot path. It must be called while no
// other goroutine can touch the store, and is irreversible; concurrent use
// of an unshared store is a data race by contract (the -race tests assert
// that shared stores keep today's locked behavior).
func (s *Store) Unshared() {
	s.mu.Lock()
	s.unshared = true
	for _, e := range s.entries {
		e.noLock = true
	}
	s.mu.Unlock()
}

func (s *Store) countRead() {
	if s.unshared {
		s.readsU++
	} else {
		s.reads.Add(1)
	}
}

func (s *Store) countWrite() {
	if s.unshared {
		s.writesU++
	} else {
		s.writes.Add(1)
	}
}

// entryBox bundles an entry with its history ring so both come out of one
// arena chunk; see Store.newEntry.
type entryBox struct {
	e Entry
	r Ring
}

// Arena chunk sizes: entries per box chunk, and ring seeds per float slab.
const (
	boxChunk  = 8
	slabChunk = 16
)

// newEntry builds an entry with the store's parameters; callers must hold
// the registry write lock (or own the store exclusively when unshared).
// Model creation — every first sighting of a peer or stimulus — is the
// dominant allocation site of a populated run, so entries, their rings and
// the rings' seed storage are carved from per-store arena chunks: a new
// model costs a fraction of an allocation amortized.
func (s *Store) newEntry(name string, scope Scope) *Entry {
	if s.histLen <= 0 {
		return &Entry{Name: name, Scope: scope, alpha: s.alpha, noLock: s.unshared}
	}
	if s.nbox == len(s.boxes) {
		s.boxes = make([]entryBox, boxChunk)
		s.nbox = 0
	}
	box := &s.boxes[s.nbox]
	s.nbox++
	box.e = Entry{Name: name, Scope: scope, alpha: s.alpha, noLock: s.unshared}
	if seed := ringSeed; s.histLen >= seed {
		// Common case (window at least the seed size): take the seed
		// arrays from the shared float slab instead of a fresh allocation.
		if len(s.slab) < 2*seed {
			s.slab = make([]float64, 2*seed*slabChunk)
		}
		b := s.slab[: 2*seed : 2*seed]
		s.slab = s.slab[2*seed:]
		box.r = Ring{t: b[:seed:seed], v: b[seed:], max: s.histLen}
	} else {
		box.r.init(s.histLen)
	}
	box.e.hist = &box.r
	return &box.e
}

// Ensure returns the entry named name, creating it with the given scope on
// first use.
func (s *Store) Ensure(name string, scope Scope) *Entry {
	if s.unshared {
		e := s.entries[name]
		if e == nil {
			e = s.newEntry(name, scope)
			s.entries[name] = e
			s.bindSlot(name, e)
		}
		return e
	}
	s.mu.RLock()
	e := s.entries[name]
	s.mu.RUnlock()
	if e != nil {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		e = s.newEntry(name, scope)
		s.entries[name] = e
		s.bindSlot(name, e)
	}
	return e
}

// bindSlot points an already-interned key's slot at e (no-op when name was
// never interned). Callers must hold the write lock / own the store.
func (s *Store) bindSlot(name string, e *Entry) {
	if k, ok := s.keys[name]; ok {
		s.slots[k-1].e = e
	}
}

// Intern returns the permanent Key for name, adding it to the symbol table
// on first use. Interning alone does not create the model: the entry comes
// into existence on the first ObserveKey/SetKey/EnsureKey (or through the
// string path), with the scope recorded here. Call once per name outside
// the hot loop, then use the Key-based accessors per tick.
func (s *Store) Intern(name string, scope Scope) Key {
	if s.unshared {
		if k, ok := s.keys[name]; ok {
			return k
		}
		return s.internLocked(name, scope)
	}
	s.mu.RLock()
	k, ok := s.keys[name]
	s.mu.RUnlock()
	if ok {
		return k
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.internLocked(name, scope)
}

func (s *Store) internLocked(name string, scope Scope) Key {
	if k, ok := s.keys[name]; ok {
		return k
	}
	if s.keys == nil {
		s.keys = make(map[string]Key)
	}
	e := s.entries[name]
	if e != nil {
		// The model already exists: its actual scope wins over the
		// caller's argument, so a later delete-and-recreate through the
		// key reproduces the model exactly (an agent restored from a
		// checkpoint interns against restored entries, whose scope is
		// authoritative).
		scope = e.Scope
	}
	s.slots = append(s.slots, slot{name: name, scope: scope, e: e})
	k := Key(len(s.slots))
	s.keys[name] = k
	return k
}

// LookupKey resolves name to its Key and current entry without ever
// creating a model: it returns (0, nil) when no such model exists. When the
// model exists but was created through the string path, it is interned here
// so the caller can switch to the Key-based accessors. It counts as one
// model consultation, exactly like Get.
func (s *Store) LookupKey(name string) (Key, *Entry) {
	s.countRead()
	if s.unshared {
		if k, ok := s.keys[name]; ok {
			return k, s.slots[k-1].e
		}
		if e := s.entries[name]; e != nil {
			return s.internLocked(name, e.Scope), e
		}
		return 0, nil
	}
	s.mu.RLock()
	if k, ok := s.keys[name]; ok {
		e := s.slots[k-1].e
		s.mu.RUnlock()
		return k, e
	}
	e := s.entries[name]
	s.mu.RUnlock()
	if e == nil {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.internLocked(name, e.Scope), s.entries[name]
}

// entryForKey returns the entry behind k, creating it (with the interned
// name and scope) when create is set and the model is currently absent.
func (s *Store) entryForKey(k Key, create bool) *Entry {
	if k <= 0 {
		panic(fmt.Sprintf("knowledge: invalid key %d", k))
	}
	if s.unshared {
		sl := &s.slots[k-1]
		if sl.e == nil && create {
			sl.e = s.newEntry(sl.name, sl.scope)
			s.entries[sl.name] = sl.e
		}
		return sl.e
	}
	s.mu.RLock()
	sl := s.slots[k-1]
	s.mu.RUnlock()
	if sl.e != nil || !create {
		return sl.e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &s.slots[k-1]
	if p.e == nil {
		p.e = s.newEntry(p.name, p.scope)
		s.entries[p.name] = p.e
	}
	return p.e
}

// ObserveKey records an observation for the interned model k (creating the
// entry if needed): the hash-free equivalent of Observe.
func (s *Store) ObserveKey(k Key, x, now float64) {
	s.countWrite()
	s.entryForKey(k, true).Observe(x, now)
}

// SetKey overwrites the interned model k's estimate without smoothing: the
// hash-free equivalent of Ensure(...).Set(...).
func (s *Store) SetKey(k Key, x, now float64) {
	s.entryForKey(k, true).Set(x, now)
}

// EnsureKey returns the entry behind k, creating it if absent (like Ensure,
// it does not count as a consultation).
func (s *Store) EnsureKey(k Key) *Entry {
	return s.entryForKey(k, true)
}

// GetKey returns the entry behind k, or nil when the model is currently
// absent (never interned into existence or deleted). Like Get, it counts
// as a model consultation.
func (s *Store) GetKey(k Key) *Entry {
	s.countRead()
	return s.entryForKey(k, false)
}

// ValueKey returns the current estimate of the interned model k, or def
// when the model is absent or has never been updated.
func (s *Store) ValueKey(k Key, def float64) float64 {
	e := s.GetKey(k)
	if e == nil {
		return def
	}
	return e.valueOr(def)
}

// Observe records an observation for name (creating the entry if needed).
func (s *Store) Observe(name string, scope Scope, x, now float64) {
	s.countWrite()
	s.Ensure(name, scope).Observe(x, now)
}

// Get returns the entry for name, or nil if absent. It counts as a model
// consultation.
func (s *Store) Get(name string) *Entry {
	s.countRead()
	if s.unshared {
		if e := s.lastGet; e != nil && name == s.lastGetName {
			return e
		}
		e := s.entries[name]
		if e != nil {
			s.lastGetName, s.lastGet = name, e
		}
		return e
	}
	s.mu.RLock()
	e := s.entries[name]
	s.mu.RUnlock()
	return e
}

// Value returns the current estimate for name, or def if the model is
// absent or has never been updated.
func (s *Store) Value(name string, def float64) float64 {
	e := s.Get(name)
	if e == nil {
		return def
	}
	return e.valueOr(def)
}

// ReadCount reports how many model consultations the store has served.
func (s *Store) ReadCount() int { return int(s.reads.Load() + s.readsU) }

// WriteCount reports how many observations the store has absorbed.
func (s *Store) WriteCount() int { return int(s.writes.Load() + s.writesU) }

// Delete removes the named entry; a later Ensure/Observe (or key-based
// write through an interned Key) recreates it fresh (first observation
// re-seeds the value). Deleting a missing name is a no-op. Meta-level
// processes use this to discard models that drift detection has
// invalidated. The name's Key, if interned, stays valid and simply points
// at nothing until the model is recreated.
func (s *Store) Delete(name string) {
	if s.unshared {
		delete(s.entries, name)
		s.bindSlot(name, nil)
		s.lastGetName, s.lastGet = "", nil
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
	s.bindSlot(name, nil)
}

// Names returns all entry names, sorted, optionally filtered by scope.
func (s *Store) Names(scope Scope, filter bool) []string {
	if !s.unshared {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	var names []string
	for n, e := range s.entries {
		if filter && e.Scope != scope {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of entries.
func (s *Store) Len() int {
	if s.unshared {
		return len(s.entries)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Inventory renders a human-readable snapshot, used by self-explanation.
func (s *Store) Inventory(now float64) string {
	if !s.unshared {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	var names []string
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		e := s.entries[n]
		if !e.noLock {
			e.mu.RLock()
		}
		v, count, conf := e.value, e.n, e.confidenceLocked(now)
		if !e.noLock {
			e.mu.RUnlock()
		}
		fmt.Fprintf(&b, "%-28s %8.3f  conf=%.2f  scope=%s  n=%d\n",
			n, v, conf, e.Scope, count)
	}
	return b.String()
}

// Ring is a bounded time-stamped history buffer: the substrate of
// time-awareness. The zero value is unusable; create with NewRing.
//
// Storage grows geometrically from ringSeed points toward the bound rather
// than being allocated up front: most models never fill their window (heap
// profiles showed full-capacity rings were the single largest source of
// object count in a populated run), and the bound only matters once enough
// observations arrive to reach it. Capacity is an implementation detail —
// snapshots serialize contents oldest-first (see EntryState), never the
// backing size — so two rings with equal contents are indistinguishable.
type Ring struct {
	t, v []float64
	head int
	size int
	max  int // the bound: len(t) grows toward it, never past it
}

// ringSeed is the initial backing size of a new ring (when the bound allows).
const ringSeed = 8

// NewRing returns a ring holding up to capacity points.
func NewRing(capacity int) *Ring {
	r := new(Ring)
	r.init(capacity)
	return r
}

// init sets up the ring in place: one backing slab serves both the time and
// value arrays (halving the object count of entry creation, which dominates
// populated-run heap profiles).
func (r *Ring) init(capacity int) {
	if capacity <= 0 {
		panic("knowledge: ring capacity must be > 0")
	}
	n := capacity
	if n > ringSeed {
		n = ringSeed
	}
	b := make([]float64, 2*n)
	*r = Ring{t: b[:n:n], v: b[n:], max: capacity}
}

// Push appends a point, evicting the oldest when full at the bound. The wrap
// is a compare, not a modulo: Push runs once per observation per model and
// the integer division dominated tick profiles. A ring full below its bound
// doubles first (amortized O(1); steady state never allocates).
//
//sacs:hotpath
func (r *Ring) Push(t, v float64) {
	if r.size == len(r.t) && r.size < r.max {
		r.grow()
	}
	r.t[r.head] = t
	r.v[r.head] = v
	r.head++
	if r.head == len(r.t) {
		r.head = 0
	}
	if r.size < len(r.t) {
		r.size++
	}
}

// grow doubles the backing arrays (capped at the bound), linearizing the
// contents oldest-first so index arithmetic stays uniform. Only called when
// the ring is full, so head is the oldest point.
func (r *Ring) grow() {
	n := len(r.t) * 2
	if n > r.max {
		n = r.max
	}
	b := make([]float64, 2*n)
	nt, nv := b[:n:n], b[n:]
	k := copy(nt, r.t[r.head:])
	copy(nt[k:], r.t[:r.head])
	k = copy(nv, r.v[r.head:])
	copy(nv[k:], r.v[:r.head])
	r.t, r.v = nt, nv
	r.head = r.size
}

// Len reports how many points are stored.
func (r *Ring) Len() int { return r.size }

// Values returns stored values oldest-first.
func (r *Ring) Values() []float64 {
	out := make([]float64, 0, r.size)
	start := r.head - r.size
	if start < 0 {
		start += len(r.t)
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.v[(start+i)%len(r.v)])
	}
	return out
}

// Times returns stored timestamps oldest-first.
func (r *Ring) Times() []float64 {
	out := make([]float64, 0, r.size)
	start := r.head - r.size
	if start < 0 {
		start += len(r.t)
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.t[(start+i)%len(r.t)])
	}
	return out
}

// Mean returns the mean of stored values (0 when empty).
func (r *Ring) Mean() float64 {
	if r.size == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.Values() {
		s += v
	}
	return s / float64(r.size)
}

// Trend returns a least-squares slope of value against time over the stored
// window (0 with fewer than 2 points): a cheap "likely future" signal. It
// iterates the ring in place — no allocation — because time-awareness calls
// it once per stimulus per tick.
//
//sacs:hotpath
func (r *Ring) Trend() float64 {
	if r.size < 2 {
		return 0
	}
	start := r.head - r.size
	if start < 0 {
		start += len(r.t)
	}
	var mt, mv float64
	for i, j := 0, start; i < r.size; i++ {
		mt += r.t[j]
		mv += r.v[j]
		if j++; j == len(r.t) {
			j = 0
		}
	}
	n := float64(r.size)
	mt /= n
	mv /= n
	var num, den float64
	for i, j := 0, start; i < r.size; i++ {
		num += (r.t[j] - mt) * (r.v[j] - mv)
		den += (r.t[j] - mt) * (r.t[j] - mt)
		if j++; j == len(r.t) {
			j = 0
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
