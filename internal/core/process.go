package core

import (
	"fmt"
	"sort"

	"sacs/internal/goals"
	"sacs/internal/knowledge"
	"sacs/internal/learning"
)

// Process is one self-awareness process: it observes stimuli and maintains
// models at a particular level. An agent runs only the processes whose level
// its Capabilities include — this gating is what makes the E5 levels
// ablation meaningful.
type Process interface {
	// Name identifies the process.
	Name() string
	// Level reports which self-awareness level the process realises.
	Level() Level
	// Observe folds a batch of stimuli into the process's models.
	Observe(now float64, batch []Stimulus)
}

// StimulusProcess realises stimulus-awareness: it records the latest value
// of every stimulus into the knowledge store under "stim/<name>". This is
// the minimal awareness every agent has.
type StimulusProcess struct {
	Store *knowledge.Store
}

// Name implements Process.
func (p *StimulusProcess) Name() string { return "stimulus-awareness" }

// Level implements Process.
func (p *StimulusProcess) Level() Level { return LevelStimulus }

// Observe implements Process.
func (p *StimulusProcess) Observe(now float64, batch []Stimulus) {
	for _, s := range batch {
		p.Store.Observe("stim/"+s.Name, s.Scope, s.Value, now)
	}
}

// InteractionProcess realises interaction-awareness: it separates stimuli
// originating from peers (Source set and different from Self) and models
// per-peer behaviour under "peer/<source>/<name>", plus an interaction
// count under "interactions".
type InteractionProcess struct {
	Self  string
	Store *knowledge.Store

	count float64
}

// Name implements Process.
func (p *InteractionProcess) Name() string { return "interaction-awareness" }

// Level implements Process.
func (p *InteractionProcess) Level() Level { return LevelInteraction }

// Observe implements Process.
func (p *InteractionProcess) Observe(now float64, batch []Stimulus) {
	for _, s := range batch {
		if s.Source == "" || s.Source == p.Self {
			continue
		}
		p.count++
		p.Store.Observe(fmt.Sprintf("peer/%s/%s", s.Source, s.Name), Public, s.Value, now)
	}
	p.Store.Ensure("interactions", Private).Set(p.count, now)
}

// TimeProcess realises time-awareness: for every stimulus name it maintains
// a one-step-ahead prediction under "pred/<name>" and a recent trend under
// "trend/<name>". The predictor factory is pluggable so the meta level can
// swap forecasting strategies at run time.
type TimeProcess struct {
	Store      *knowledge.Store
	NewPredict func() learning.Predictor

	preds  map[string]learning.Predictor
	errors map[string]*learning.MSETracker
	names  []string // sorted keys of preds, maintained on insert
}

// Name implements Process.
func (p *TimeProcess) Name() string { return "time-awareness" }

// Level implements Process.
func (p *TimeProcess) Level() Level { return LevelTime }

// Observe implements Process.
func (p *TimeProcess) Observe(now float64, batch []Stimulus) {
	if p.preds == nil {
		p.preds = make(map[string]learning.Predictor)
		p.errors = make(map[string]*learning.MSETracker)
	}
	if p.NewPredict == nil {
		p.NewPredict = func() learning.Predictor { return learning.NewEWMA(0.3) }
	}
	for _, s := range batch {
		pr, ok := p.preds[s.Name]
		if !ok {
			pr = p.NewPredict()
			p.preds[s.Name] = pr
			p.errors[s.Name] = &learning.MSETracker{}
			p.insertName(s.Name)
		} else {
			// Score yesterday's forecast against today's truth before
			// updating: honest out-of-sample error for the meta level.
			p.errors[s.Name].Record(pr.Predict(), s.Value)
		}
		pr.Observe(s.Value)
		p.Store.Ensure("pred/"+s.Name, s.Scope).Set(pr.Predict(), now)
		if e := p.Store.Get("stim/" + s.Name); e != nil {
			if tr, ok := e.Trend(); ok {
				p.Store.Ensure("trend/"+s.Name, s.Scope).Set(tr, now)
			}
		}
	}
}

// ForecastError returns the running RMSE of the process's forecasts for the
// named stimulus (0 if unknown). The meta level reads this.
func (p *TimeProcess) ForecastError(name string) float64 {
	if t, ok := p.errors[name]; ok {
		return t.RMSE()
	}
	return 0
}

// insertName records a newly predicted stimulus in the process's sorted
// name index, which exists so per-step readers iterate in a fixed order
// without allocating.
func (p *TimeProcess) insertName(name string) {
	i := sort.SearchStrings(p.names, name)
	p.names = append(p.names, "")
	copy(p.names[i+1:], p.names[i:])
	p.names[i] = name
}

// MeanForecastError averages RMSE over all predicted stimuli. Summation
// runs in sorted name order: float addition is not associative, and the
// meta level writes this value into the knowledge store once per step, so
// map-iteration order must not leak into checkpointed state (and the hot
// path must not allocate — hence the maintained name index).
func (p *TimeProcess) MeanForecastError() float64 {
	if len(p.errors) == 0 {
		return 0
	}
	s := 0.0
	for _, n := range p.names {
		s += p.errors[n].RMSE()
	}
	return s / float64(len(p.errors))
}

// Reset discards all predictors, forcing re-learning; the meta level calls
// this when drift is detected.
func (p *TimeProcess) Reset() {
	p.preds = nil
	p.errors = nil
	p.names = nil
}

// SwapPredictor replaces the predictor factory and resets state.
func (p *TimeProcess) SwapPredictor(f func() learning.Predictor) {
	p.NewPredict = f
	p.Reset()
}

// GoalProcess realises goal-awareness: at every step it evaluates the
// current metric snapshot against the active goal set, recording
// "goal/utility", "goal/violations" and the count of run-time goal switches
// it has noticed ("goal/switches"). Metrics are supplied by the agent from
// its substrate via SetMetrics before Observe runs.
type GoalProcess struct {
	Store    *knowledge.Store
	Switcher *goals.Switcher

	metrics  map[string]float64
	switches float64
}

// SetMetrics provides the substrate's current metric snapshot for the next
// Observe call.
func (p *GoalProcess) SetMetrics(m map[string]float64) { p.metrics = m }

// Name implements Process.
func (p *GoalProcess) Name() string { return "goal-awareness" }

// Level implements Process.
func (p *GoalProcess) Level() Level { return LevelGoal }

// Observe implements Process.
func (p *GoalProcess) Observe(now float64, batch []Stimulus) {
	if p.Switcher == nil {
		return
	}
	active, changed := p.Switcher.Tick(now)
	if changed {
		p.switches++
	}
	m := p.metrics
	if m == nil {
		// Fall back to raw stimulus values so goal evaluation degrades
		// gracefully when the substrate provides no explicit metrics.
		m = make(map[string]float64, len(batch))
		for _, s := range batch {
			m[s.Name] = s.Value
		}
	}
	p.Store.Ensure("goal/utility", Private).Set(active.Utility(m), now)
	p.Store.Ensure("goal/violations", Private).Set(float64(len(active.Violations(m))), now)
	p.Store.Ensure("goal/switches", Private).Set(p.switches, now)
}
