package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sacs/internal/core"
	"sacs/internal/knowledge"
	"sacs/internal/obs"
	"sacs/internal/population"
)

// The HTTP surface of a Server. Errors are returned as JSON
// {"error": "..."} with 400 for caller mistakes (unknown population,
// out-of-range agent, malformed body) and 500 for host-side failures
// (checkpoint I/O). All handlers are safe for concurrent use: they go
// through the Server methods, which serialise per population.

// StimulusRequest is the POST /populations/{id}/stimuli body: one external
// observation to deliver to agent To at the next tick. Scope is "public"
// (default) or "private"; Time defaults to the population's current tick.
// The endpoint also accepts a JSON array of these, enqueued in order as
// one atomic batch.
type StimulusRequest struct {
	To     int      `json:"to"`
	Name   string   `json:"name"`
	Value  float64  `json:"value"`
	Source string   `json:"source,omitempty"`
	Scope  string   `json:"scope,omitempty"`
	Time   *float64 `json:"time,omitempty"`
}

// maxStimuliBody bounds one ingest request's body (1 MiB ≈ tens of
// thousands of stimuli): a first backpressure line so a hot client cannot
// buffer unbounded JSON into the daemon.
const maxStimuliBody = 1 << 20

// item converts the wire form to the Server's ingest form, validating the
// fields that the wire format cannot express as types.
func (r *StimulusRequest) item() (IngestItem, error) {
	if r.Name == "" {
		return IngestItem{}, errors.New("stimulus needs a name")
	}
	scope := knowledge.Public
	switch r.Scope {
	case "", "public":
	case "private":
		scope = knowledge.Private
	default:
		return IngestItem{}, fmt.Errorf("bad scope %q (public|private)", r.Scope)
	}
	stim := core.Stimulus{Name: r.Name, Source: r.Source, Scope: scope, Value: r.Value}
	if r.Time != nil {
		stim.Time = *r.Time
	}
	return IngestItem{To: r.To, Stim: stim, HasTime: r.Time != nil}, nil
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// routeMetrics is one route pattern's instrument set, registered when the
// Handler is built; the per-request path is two atomic updates.
type routeMetrics struct {
	byClass [6]*obs.Counter // index status/100 (2xx..5xx populated)
	latency *obs.Histogram
}

// handle registers pattern on mux with request counting (by status class)
// and latency instrumentation around h.
func (s *Server) handle(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	route := obs.L("route", pattern)
	rm := &routeMetrics{
		latency: s.reg.Histogram("sacs_http_request_seconds",
			"request handling latency", obs.Seconds, obs.DurationBounds(), route),
	}
	for _, class := range []int{2, 3, 4, 5} {
		rm.byClass[class] = s.reg.Counter("sacs_http_requests_total",
			"requests by route and status class", route,
			obs.L("class", fmt.Sprintf("%dxx", class)))
	}
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rm.latency.ObserveDuration(time.Since(start))
		if c := sw.code / 100; c >= 2 && c <= 5 {
			rm.byClass[c].Inc()
		}
	})
}

// Handler returns the Server's HTTP API:
//
//	GET  /healthz                              liveness + uptime + population count
//	GET  /metrics                              Prometheus text exposition
//	GET  /debug/vars                           the same metrics as one JSON object
//	GET  /populations                          all populations' status
//	GET  /populations/{id}                     one population's status
//	POST /populations/{id}/ticks?n=K           advance K ticks (default 1)
//	POST /populations/{id}/stimuli             ingest one StimulusRequest, or a
//	                                           JSON array of them (atomic batch,
//	                                           enqueued in order, one lock pass)
//	GET  /populations/{id}/agents/{n}/explain  per-agent self-explanation (text)
//	POST /populations/{id}/checkpoint          snapshot to disk now
//	GET  /cluster                              worker list + per-population placements
//	POST /cluster/workers                      admit a worker: {"addr":"host:port"}
//	                                           (new addresses join the list; a known
//	                                           address is re-dialled into its slot)
//	POST /cluster/rebalance                    migrate shards live via the default
//	                                           cost policy; returns the moves
//
// The /cluster routes exist only when the server hosts populations on a
// cluster (Options.UseCluster); in-process servers answer 400. Every route
// is instrumented (request count by status class, latency); the exposition
// and JSON snapshot render the server's whole registry — engine, cluster
// and serve planes alike.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	s.handle(mux, "GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WriteExposition(w)
	})

	s.handle(mux, "GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})

	// The liveness probe reads only atomics (nPops mirrors the population
	// map): it must answer even while s.mu is write-held building an
	// engine over a slow cluster, or while every population is mid-tick.
	s.handle(mux, "GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":          true,
			"uptime_sec":  time.Since(s.started).Seconds(),
			"populations": s.nPops.Load(),
		})
	})

	s.handle(mux, "GET /populations", func(w http.ResponseWriter, r *http.Request) {
		out := make([]Status, 0)
		for _, id := range s.IDs() {
			st, err := s.Status(id)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			out = append(out, st)
		}
		writeJSON(w, http.StatusOK, out)
	})

	s.handle(mux, "GET /populations/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	s.handle(mux, "POST /populations/{id}/ticks", func(w http.ResponseWriter, r *http.Request) {
		n := 1
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q: %w", q, err))
				return
			}
			n = v
		}
		const maxTicksPerRequest = 100000 // backpressure: bound one request's work
		if n < 1 || n > maxTicksPerRequest {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("n must be in [1, %d], got %d", maxTicksPerRequest, n))
			return
		}
		last, err := s.Advance(r.PathValue("id"), n)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrHost) {
				code = http.StatusInternalServerError
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ticked":    n,
			"tick":      last.Tick + 1, // ticks completed after this request
			"steps":     last.Steps,
			"messages":  last.Messages,
			"delivered": last.Delivered,
			"actions":   last.Actions,
		})
	})

	s.handle(mux, "POST /populations/{id}/stimuli", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxStimuliBody+1))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("reading stimulus body: %w", err))
			return
		}
		if len(body) > maxStimuliBody {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("stimulus body exceeds %d bytes; split the batch", maxStimuliBody))
			return
		}
		var reqs []StimulusRequest
		if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
			if err := json.Unmarshal(body, &reqs); err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad stimulus batch: %w", err))
				return
			}
			if len(reqs) == 0 {
				writeErr(w, http.StatusBadRequest, errors.New("empty stimulus batch"))
				return
			}
		} else {
			var one StimulusRequest
			if err := json.Unmarshal(body, &one); err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad stimulus body: %w", err))
				return
			}
			reqs = append(reqs, one)
		}
		items := make([]IngestItem, len(reqs))
		for i := range reqs {
			it, err := reqs[i].item()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("stimulus %d: %w", i, err))
				return
			}
			items[i] = it
		}
		deliverAt, err := s.IngestBatch(r.PathValue("id"), items)
		if err != nil {
			// Budget shedding is its own contract: 429 with a Retry-After
			// of about one tick interval, after which the barrier will
			// have drained the mailboxes. Both the serve-level budget and
			// the engine's own hard cap spell it the same way.
			if errors.Is(err, ErrOverloaded) || errors.Is(err, population.ErrMailboxFull) {
				w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter(r.PathValue("id"))))
				writeErr(w, http.StatusTooManyRequests, err)
				return
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"queued": len(items), "deliver_at_tick": deliverAt})
	})

	s.handle(mux, "GET /populations/{id}/agents/{n}/explain", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.Atoi(r.PathValue("n"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad agent index %q", r.PathValue("n")))
			return
		}
		text, tick, err := s.ExplainAt(r.PathValue("id"), n)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrHost):
				code = http.StatusInternalServerError
			case errors.Is(err, ErrNotFound):
				// Decided against the published view — for cluster-hosted
				// populations, no worker round-trip.
				code = http.StatusNotFound
			}
			writeErr(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Sacs-View-Tick", strconv.Itoa(tick))
		fmt.Fprint(w, text)
	})

	s.handle(mux, "GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.ClusterStatus()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	s.handle(mux, "POST /cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Addr   string `json:"addr"`
			WaitMS int    `json:"wait_ms"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad admit body: %w", err))
			return
		}
		wi, err := s.ClusterAdmit(req.Addr, time.Duration(req.WaitMS)*time.Millisecond)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"worker": wi, "addr": req.Addr})
	})

	s.handle(mux, "POST /cluster/rebalance", func(w http.ResponseWriter, r *http.Request) {
		moves, err := s.ClusterRebalance()
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrHost) {
				code = http.StatusInternalServerError
			}
			writeErr(w, code, err)
			return
		}
		total := 0
		for _, m := range moves {
			total += len(m)
		}
		writeJSON(w, http.StatusOK, map[string]any{"moves": moves, "total": total})
	})

	// Catch-all: requests matching no route still flow through handle()'s
	// accounting, so the middleware is the single point where every
	// response — 2xx, shed 429s, oversized 413s, unknown-path 404s — is
	// counted into sacs_http_requests_total on both metrics planes.
	s.handle(mux, "/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no route for %s %s", r.Method, r.URL.Path))
	})

	s.handle(mux, "POST /populations/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		path, err := s.Checkpoint(r.PathValue("id"))
		if err != nil {
			// The documented contract: ErrHost marks the service's own
			// failures (snapshot export, encoding, checkpoint I/O) → 500;
			// everything else — unknown population, no checkpoint
			// directory configured — is the caller's mistake → 400.
			code := http.StatusBadRequest
			if errors.Is(err, ErrHost) {
				code = http.StatusInternalServerError
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"path": path})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
