// Package checkpoint serialises population snapshots into a versioned,
// checksummed binary format and manages snapshot files on disk. It is the
// durability layer under cmd/sawd: a long-lived population is periodically
// encoded with Encode/Write, and after a crash or restart the latest intact
// file is decoded and handed to population.Restore, which continues the
// simulation byte-identically (the resume-determinism contract in
// DESIGN.md).
//
// The wire format (documented in full in DESIGN.md, "Snapshot wire
// format") is deliberately boring: a fixed header — 8-byte magic
// "SACSNAP\x01", little-endian uint32 version, little-endian uint64 payload
// length — followed by the payload and a CRC-32C of the payload. The
// payload is a fixed field order of varints, length-prefixed strings and
// IEEE-754 bits; map-shaped data (snapshot metadata, store entries) is
// sorted before encoding, so equal states always encode to equal bytes.
// That byte-determinism is load-bearing: experiment S2 proves resume
// correctness by comparing encoded snapshots with bytes.Equal.
//
// Decode verifies magic, version, length and checksum before interpreting
// anything, so truncated or bit-flipped files fail with ErrCorrupt rather
// than yielding a silently wrong population.
package checkpoint
