// Camera network: the paper's "learning to be different" scenario (§II).
//
// A network of smart cameras tracks moving objects, exchanging tracking
// responsibility through auctions. Each camera's marketing strategy trades
// tracking utility against communication. This example runs every fixed
// homogeneous strategy, then the self-aware network in which each camera
// learns its own strategy from local experience — and prints the emergent
// heterogeneous strategy mix.
//
// Run with: go run ./examples/cameranetwork
package main

import (
	"fmt"

	"sacs/internal/camnet"
)

func main() {
	const (
		cameras = 25
		objects = 30
		ticks   = 6000
		seed    = 42
	)

	fmt.Printf("camera network: %d cameras, %d objects, %d ticks\n\n", cameras, objects, ticks)
	fmt.Printf("%-22s %10s %10s %10s %9s\n", "strategy", "utility", "messages", "util/msg", "coverage")

	var bestUtil float64
	for s := camnet.Strategy(0); s < camnet.NumStrategies; s++ {
		r := camnet.NewNetwork(camnet.Config{
			Seed: seed, Cameras: cameras, Objects: objects, Ticks: ticks, Fixed: s,
		}).Run()
		if r.Utility > bestUtil {
			bestUtil = r.Utility
		}
		fmt.Printf("%-22s %10.0f %10.0f %10.3f %9.3f\n",
			s.String(), r.Utility, r.Messages, r.UtilPerMsg, r.Coverage)
	}

	n := camnet.NewNetwork(camnet.Config{
		Seed: seed, Cameras: cameras, Objects: objects, Ticks: ticks, SelfAware: true,
	})
	r := n.Run()
	fmt.Printf("%-22s %10.0f %10.0f %10.3f %9.3f\n",
		"self-aware (learned)", r.Utility, r.Messages, r.UtilPerMsg, r.Coverage)

	fmt.Printf("\nself-aware network reached %.1f%% of the best static utility\n",
		100*r.Utility/bestUtil)
	fmt.Printf("strategy heterogeneity (normalised entropy): %.2f\n\n", r.Entropy)

	counts := make(map[camnet.Strategy]int)
	for _, c := range n.Cams {
		counts[c.Strategy]++
	}
	fmt.Println("the cameras learned to be different:")
	for s := camnet.Strategy(0); s < camnet.NumStrategies; s++ {
		fmt.Printf("  %-20s chosen by %2d cameras\n", s, counts[s])
	}
}
