// Package sim provides a small deterministic discrete-event simulation
// kernel used by every substrate in this repository.
//
// The kernel is intentionally minimal: a virtual clock, a binary-heap event
// queue with stable FIFO ordering for simultaneous events, and seeded random
// number streams so that every experiment is reproducible from a single
// integer seed. Both event-driven simulation (Schedule/Run) and fixed-step
// simulation (Ticker) are supported, because the camera-network and
// multicore substrates are naturally tick-based while the cloud and network
// substrates are naturally event-based.
package sim
