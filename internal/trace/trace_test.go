package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndSeries(t *testing.T) {
	r := NewRecorder()
	r.Record("lat", 1, 10)
	r.Record("lat", 2, 20)
	r.Record("pow", 1, 5)

	ts, vs := r.Series("lat")
	if len(ts) != 2 || ts[1] != 2 || vs[1] != 20 {
		t.Fatalf("series = %v %v", ts, vs)
	}
	if r.Len("lat") != 2 || r.Len("missing") != 0 {
		t.Fatal("Len wrong")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "lat" || names[1] != "pow" {
		t.Fatalf("names = %v", names)
	}
	if ts, vs := r.Series("missing"); ts != nil || vs != nil {
		t.Fatal("missing series should be nil")
	}
}

func TestSeriesReturnsCopies(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 1, 1)
	ts, _ := r.Series("a")
	ts[0] = 999
	ts2, _ := r.Series("a")
	if ts2[0] == 999 {
		t.Fatal("Series leaked internal slice")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("x", 0.5, 1.25)
	r.Record("y", 1, 2)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "series,t,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("csv lines = %v", lines)
	}
	if !strings.Contains(out, "x,0.5,1.25") {
		t.Fatalf("csv missing row:\n%s", out)
	}
}

func TestSetLimitRing(t *testing.T) {
	r := NewRecorder()
	r.SetLimit(3)
	for i := 0; i < 5; i++ {
		r.Record("s", float64(i), float64(i*10))
	}
	ts, vs := r.Series("s")
	if len(ts) != 3 || ts[0] != 2 || ts[2] != 4 || vs[0] != 20 || vs[2] != 40 {
		t.Fatalf("ring series = %v %v, want newest 3 oldest-first", ts, vs)
	}
	if r.Len("s") != 3 {
		t.Fatalf("Len = %d, want 3", r.Len("s"))
	}
}

func TestSetLimitTrimsExisting(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 10; i++ {
		r.Record("s", float64(i), float64(i))
	}
	r.SetLimit(4)
	ts, _ := r.Series("s")
	if len(ts) != 4 || ts[0] != 6 || ts[3] != 9 {
		t.Fatalf("trimmed series = %v, want [6 7 8 9]", ts)
	}
	// Ring continues correctly after the trim.
	r.Record("s", 10, 10)
	ts, _ = r.Series("s")
	if len(ts) != 4 || ts[0] != 7 || ts[3] != 10 {
		t.Fatalf("post-trim ring = %v, want [7 8 9 10]", ts)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.SetLimit(2)
	r.Record("a", 1, 1)
	r.Record("b", 1, 1)
	r.Reset()
	if len(r.Names()) != 0 {
		t.Fatalf("names after Reset = %v", r.Names())
	}
	// Limit survives the reset.
	for i := 0; i < 4; i++ {
		r.Record("a", float64(i), 0)
	}
	if r.Len("a") != 2 {
		t.Fatalf("limit lost after Reset: Len = %d", r.Len("a"))
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("shared", float64(i), float64(g))
			}
		}(g)
	}
	wg.Wait()
	if r.Len("shared") != 800 {
		t.Fatalf("concurrent records lost: %d", r.Len("shared"))
	}
}
