package cluster

import (
	"bytes"
	"testing"
	"time"

	"sacs/internal/cloudsim"
	"sacs/internal/population"
)

// applyMoves replays a proposal onto a copied owner map, failing on any
// internally inconsistent move (the same check Transport.Rebalance makes).
func applyMoves(t *testing.T, v View, moves []Move) []int {
	t.Helper()
	owner := append([]int(nil), v.Owner...)
	for _, m := range moves {
		if m.Lo < 0 || m.Hi > len(owner) || m.Lo >= m.Hi {
			t.Fatalf("move %+v out of range", m)
		}
		if v.Dead[m.To] {
			t.Fatalf("move %+v targets a dead worker", m)
		}
		for s := m.Lo; s < m.Hi; s++ {
			if owner[s] != m.From {
				t.Fatalf("move %+v: shard %d owned by %d", m, s, owner[s])
			}
			owner[s] = m.To
		}
	}
	return owner
}

func loadsOf(owner []int, costs []float64, workers int) []float64 {
	loads := make([]float64, workers)
	for s, wi := range owner {
		c := costs[s]
		if c <= 0 {
			c = 1
		}
		loads[wi] += c
	}
	return loads
}

// TestCostRebalancerSmoothsSkew: with no autoscaler, a heavily skewed
// placement is smoothed under the threshold by single-shard moves, and the
// proposal is deterministic.
func TestCostRebalancerSmoothsSkew(t *testing.T) {
	v := View{
		// Worker 0 owns six shards, worker 1 two; uniform costs.
		Owner:   []int{0, 0, 0, 0, 0, 0, 1, 1},
		Costs:   []float64{100, 100, 100, 100, 100, 100, 100, 100},
		Dead:    []bool{false, false},
		Workers: 2,
	}
	r := &CostRebalancer{Threshold: 1.5}
	moves := r.Propose(v)
	if len(moves) == 0 {
		t.Fatal("3x skew over threshold 1.5 proposed no moves")
	}
	owner := applyMoves(t, v, moves)
	loads := loadsOf(owner, v.Costs, v.Workers)
	if loads[0] > 1.5*loads[1] || loads[1] > 1.5*loads[0] {
		t.Fatalf("loads %v still exceed threshold after rebalance", loads)
	}
	again := (&CostRebalancer{Threshold: 1.5}).Propose(v)
	if len(again) != len(moves) {
		t.Fatalf("proposal not deterministic: %d vs %d moves", len(moves), len(again))
	}
	for i := range moves {
		if moves[i] != again[i] {
			t.Fatalf("proposal not deterministic at move %d: %+v vs %+v", i, moves[i], again[i])
		}
	}
}

// TestCostRebalancerBalancedProposesNothing: a placement inside the
// threshold is left alone — EWMA jitter must not cause migration churn.
func TestCostRebalancerBalancedProposesNothing(t *testing.T) {
	v := View{
		Owner:   []int{0, 0, 0, 0, 1, 1, 1, 1},
		Costs:   []float64{100, 110, 90, 105, 95, 100, 100, 108},
		Dead:    []bool{false, false},
		Workers: 2,
	}
	if moves := (&CostRebalancer{}).Propose(v); len(moves) != 0 {
		t.Fatalf("balanced placement proposed %+v", moves)
	}
}

// TestCostRebalancerGrowsViaAutoscaler: the cloudsim control law decides
// carrier count from real load. A reactive scaler seeing 8 shards per
// carrier against a high-water mark of 4 grows onto the admitted-but-empty
// worker, and the evacuation moves land there.
func TestCostRebalancerGrowsViaAutoscaler(t *testing.T) {
	owner := make([]int, 16)
	costs := make([]float64, 16)
	for s := range owner {
		owner[s] = s / 8 // workers 0 and 1 carry everything
		costs[s] = 50
	}
	v := View{Owner: owner, Costs: costs, Dead: []bool{false, false, false}, Workers: 3}
	r := &CostRebalancer{Scaler: &cloudsim.Reactive{Hi: 4, Lo: 0.5, Step: 1}}
	moves := r.Propose(v)
	if len(moves) == 0 {
		t.Fatal("overloaded carriers proposed no growth moves")
	}
	grew := false
	for _, m := range moves {
		if m.To == 2 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no move targets the empty worker: %+v", moves)
	}
	final := applyMoves(t, v, moves)
	loads := loadsOf(final, costs, 3)
	if loads[2] == 0 {
		t.Fatalf("worker 2 still empty after growth: %v", loads)
	}
}

// TestCostRebalancerShrinksViaAutoscaler: a near-idle cluster consolidates
// — the scaler proposes fewer carriers and the lightest workers are
// evacuated wholesale.
func TestCostRebalancerShrinksViaAutoscaler(t *testing.T) {
	v := View{
		Owner:   []int{0, 0, 0, 1, 1, 1, 2, 2},
		Costs:   []float64{1, 1, 1, 1, 1, 1, 1, 1},
		Dead:    []bool{false, false, false},
		Workers: 3,
	}
	// Lo 3: under three shards per carrier scales down.
	r := &CostRebalancer{Scaler: &cloudsim.Reactive{Hi: 100, Lo: 3, Step: 1}}
	moves := r.Propose(v)
	if len(moves) == 0 {
		t.Fatal("idle cluster proposed no consolidation")
	}
	final := applyMoves(t, v, moves)
	carriers := map[int]bool{}
	for _, wi := range final {
		carriers[wi] = true
	}
	if len(carriers) != 2 {
		t.Fatalf("want 2 carriers after shrink, got %d (%v)", len(carriers), final)
	}
}

// TestCostRebalancerIgnoresDeadWorkers: orphaned shards (dead owner) are
// never proposed — they need Assign, not Migrate — and dead workers are
// never destinations.
func TestCostRebalancerIgnoresDeadWorkers(t *testing.T) {
	v := View{
		Owner:   []int{0, 0, 0, 0, 0, 0, 1, 1},
		Costs:   []float64{100, 100, 100, 100, 100, 100, 100, 100},
		Dead:    []bool{false, true},
		Workers: 2,
	}
	for _, m := range (&CostRebalancer{}).Propose(v) {
		if m.From == 1 || m.To == 1 {
			t.Fatalf("move %+v touches the dead worker", m)
		}
	}
	// All workers dead: nothing to do, no panic.
	v.Dead = []bool{true, true}
	if moves := (&CostRebalancer{}).Propose(v); len(moves) != 0 {
		t.Fatalf("all-dead view proposed %+v", moves)
	}
}

// TestCostRebalancerRespectsMaxMoves: a pathological skew still yields a
// bounded batch.
func TestCostRebalancerRespectsMaxMoves(t *testing.T) {
	owner := make([]int, 64)
	costs := make([]float64, 64)
	for s := range owner {
		costs[s] = 10
	}
	v := View{Owner: owner, Costs: costs, Dead: []bool{false, false}, Workers: 2}
	moves := (&CostRebalancer{MaxMoves: 3}).Propose(v)
	if len(moves) > 3 {
		t.Fatalf("%d moves exceed MaxMoves 3", len(moves))
	}
}

// TestRebalanceEndToEndByteIdentical: the full loop — run, admit an empty
// worker, Rebalance with the autoscaler-driven policy, keep running — must
// execute real migrations and stay byte-identical to the uninterrupted
// single-process engine.
func TestRebalanceEndToEndByteIdentical(t *testing.T) {
	ref := population.New(testBuild(tAgents, tShards, tSeed, nil))
	addrs, _ := startWorkers(t, 2)
	cl := dialAll(t, addrs)
	tr, err := cl.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tickBoth(t, i, ref, eng)
	}

	lateAddrs, _ := startWorkers(t, 1)
	wi, err := cl.AddWorker(lateAddrs[0], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AdmitWorker(wi); err != nil {
		t.Fatal(err)
	}
	// 8 shards on 2 carriers = 4 per node, over a high-water mark of 2:
	// the reactive law grows onto the new worker.
	moves, err := tr.Rebalance(&CostRebalancer{Scaler: &cloudsim.Reactive{Hi: 2, Lo: 0.1, Step: 1}})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if len(moves) == 0 {
		t.Fatal("rebalance executed no moves")
	}
	landed := false
	for _, wiOwner := range tr.Owner() {
		if wiOwner == wi {
			landed = true
		}
	}
	if !landed {
		t.Fatalf("no shard landed on the admitted worker; owner map %v after %+v", tr.Owner(), moves)
	}

	for i := 10; i < 20; i++ {
		tickBoth(t, i, ref, eng)
	}
	if !bytes.Equal(encodeSnap(t, ref), encodeSnap(t, eng)) {
		t.Fatal("run diverged across a live rebalance")
	}
}
