package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func batchMoments(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d <= tol*scale
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 16
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		m, v := batchMoments(xs)
		return close(o.Mean(), m, 1e-9) && close(o.Var(), v, 1e-6) && o.N() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMinMaxSum(t *testing.T) {
	var o Online
	for _, x := range []float64{3, -1, 7, 2} {
		o.Add(x)
	}
	if o.Min() != -1 || o.Max() != 7 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
	if !close(o.Sum(), 11, 1e-12) {
		t.Fatalf("sum = %v", o.Sum())
	}
}

func TestOnlineMergeEquivalentToSequential(t *testing.T) {
	f := func(a, b []int16) bool {
		var oa, ob, all Online
		for _, v := range a {
			oa.Add(float64(v))
			all.Add(float64(v))
		}
		for _, v := range b {
			ob.Add(float64(v))
			all.Add(float64(v))
		}
		oa.Merge(&ob)
		return close(oa.Mean(), all.Mean(), 1e-9) &&
			close(oa.Var(), all.Var(), 1e-6) &&
			oa.N() == all.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Online
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
	var one Online
	one.Add(5)
	if one.CI95() != 0 {
		t.Fatalf("CI95 with n=1 should be 0, got %v", one.CI95())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !close(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice should be 0")
	}
	// Out-of-range q clamps.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Error("Quantile did not clamp q")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileWithinBoundsProperty(t *testing.T) {
	f := func(raw []int16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		q := float64(qRaw) / 255
		got := Quantile(xs, q)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !close(Mean([]float64{2, 4, 6}), 4, 1e-12) {
		t.Error("Mean wrong")
	}
	if !close(Std([]float64{2, 4, 6}), 2, 1e-12) {
		t.Errorf("Std = %v, want 2", Std([]float64{2, 4, 6}))
	}
}

func TestTableLookupAndRender(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("sys1", 1, 2)
	tb.AddRow("sys2", 3.5, 4000)
	tb.AddNote("a note with %d", 42)

	if v, ok := tb.Lookup("sys2", "a"); !ok || v != 3.5 {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if _, ok := tb.Lookup("nope", "a"); ok {
		t.Fatal("Lookup of missing row succeeded")
	}
	if _, ok := tb.Lookup("sys1", "nope"); ok {
		t.Fatal("Lookup of missing column succeeded")
	}

	s := tb.String()
	for _, want := range []string{"demo", "sys1", "sys2", "a note with 42", "4000"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 2 || tb.RowLabel(0) != "sys1" || tb.Cell(1, 1) != 4000 {
		t.Fatal("table accessors wrong")
	}
}

func TestTableMismatchedRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	NewTable("t", "a").AddRow("r", 1, 2)
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	s1 := f.AddSeries("one")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := f.AddSeries("two")
	s2.Add(1, 11)

	out := f.String()
	for _, want := range []string{"fig", "one", "two", "20", "11", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure render missing %q:\n%s", want, out)
		}
	}
}
