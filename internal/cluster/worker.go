package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"

	"sacs/internal/checkpoint"
	"sacs/internal/core"
	"sacs/internal/population"
	"sacs/internal/runner"
)

// Workload is a named, rebuildable population configuration — the worker
// side of serve.Workload. Build must be a pure function of its arguments:
// the coordinator sends only (workload, agents, shards, seed) over the
// wire, and determinism across the cluster relies on every worker
// rebuilding the identical Config.
type Workload struct {
	Name  string
	Build func(agents, shards int, seed int64, pool *runner.Pool) population.Config
}

// Worker hosts contiguous shard ranges of populations on behalf of a
// coordinator. Create with NewWorker, then Serve; one worker can host
// ranges of any number of populations (keyed by population id).
type Worker struct {
	ln        net.Listener
	pool      *runner.Pool
	workloads map[string]Workload
	log       *slog.Logger

	mu     sync.Mutex
	pops   map[string]*workerPop
	conns  map[net.Conn]struct{}
	epochs uint64 // attach-epoch counter, incremented per successful init
}

// workerPop is one hosted shard range and its reusable tick scratch.
type workerPop struct {
	mu        sync.Mutex
	epoch     uint64 // the attach that owns this range (split-brain guard)
	transport *population.LocalTransport
	loAgent   int
	hiAgent   int
	mail      [][]core.Stimulus // global-indexed scratch inboxes, owned range only
	touched   []int             // ids filled this tick, cleared after the step
}

// NewWorker wraps an existing listener (so tests and cmd/sawd can bind
// ":0" or a flag-chosen address themselves). pool steps the hosted shards;
// nil steps them inline.
func NewWorker(ln net.Listener, pool *runner.Pool, workloads []Workload) (*Worker, error) {
	w := &Worker{
		ln:        ln,
		pool:      pool,
		workloads: make(map[string]Workload, len(workloads)),
		log:       slog.Default(),
		pops:      make(map[string]*workerPop),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, wl := range workloads {
		if wl.Name == "" || wl.Build == nil {
			return nil, errors.New("cluster: workload with empty name or nil builder")
		}
		if _, dup := w.workloads[wl.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate workload %q", wl.Name)
		}
		w.workloads[wl.Name] = wl
	}
	return w, nil
}

// Addr reports the listener's address (useful with ":0").
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetLogger replaces the worker's structured logger (default
// slog.Default()). Call before Serve.
func (w *Worker) SetLogger(l *slog.Logger) {
	if l != nil {
		w.log = l
	}
}

// Close stops the worker: the listener and every live coordinator
// connection are closed, so to an attached coordinator Close is
// indistinguishable from the worker process dying — which is exactly what
// tests use it for.
func (w *Worker) Close() error {
	err := w.ln.Close()
	w.mu.Lock()
	defer w.mu.Unlock()
	for c := range w.conns {
		c.Close()
	}
	w.conns = make(map[net.Conn]struct{})
	return err
}

// Serve accepts coordinator connections until Close; each connection is
// handled serially on its own goroutine (the barrier protocol is lock-step,
// so there is nothing to pipeline). It returns nil after Close.
func (w *Worker) Serve() error {
	for {
		c, err := w.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go w.handleConn(c)
	}
}

func (w *Worker) handleConn(c net.Conn) {
	w.mu.Lock()
	w.conns[c] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.conns, c)
		w.mu.Unlock()
		c.Close()
	}()
	r := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<16)
	for {
		t, body, err := readFrame(r)
		if err != nil {
			return // connection gone or garbage framing: nothing to reply to
		}
		rt, rbody := w.handle(t, body)
		if rt == msgErr {
			d := checkpoint.NewDecoder(rbody)
			w.log.Warn("cluster: request failed",
				"remote", c.RemoteAddr().String(), "type", msgName(t), "err", d.Str())
		}
		if err := writeFrame(bw, rt, rbody); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handle dispatches one request and never panics: a handler panic (e.g. a
// workload builder rejecting its arguments) is converted into an msgErr
// reply so the coordinator gets a diagnosable error instead of a dead
// connection.
func (w *Worker) handle(t msgType, body []byte) (rt msgType, rbody []byte) {
	defer func() {
		if r := recover(); r != nil {
			rt, rbody = errReply(fmt.Errorf("worker panic: %v", r))
		}
	}()
	switch t {
	case msgPing:
		return msgOK, nil
	case msgInit:
		return w.handleInit(body)
	case msgInstall:
		return w.handleInstall(body)
	case msgTick:
		return w.handleTick(body)
	case msgExport:
		return w.handleExport(body)
	case msgExplain:
		return w.handleExplain(body)
	case msgDrop:
		return w.handleDrop(body)
	default:
		return errReply(fmt.Errorf("unknown message type %d", t))
	}
}

func errReply(err error) (msgType, []byte) {
	e := checkpoint.NewEncoder()
	e.Str(err.Error())
	return msgErr, append([]byte(nil), e.Bytes()...)
}

// pop resolves a population and checks the caller's attach epoch. A stale
// epoch means another coordinator has re-initialised the range since this
// caller attached: its state is gone, and silently serving it would mean
// undetected divergence — the one thing the failure model forbids. The
// stale coordinator gets a loud error instead (serve maps it to 500).
func (w *Worker) pop(id string, epoch uint64) (*workerPop, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p := w.pops[id]
	if p == nil {
		return nil, fmt.Errorf("no population %q hosted here", id)
	}
	if p.epoch != epoch {
		return nil, fmt.Errorf("stale attach epoch %d for population %q (current %d): "+
			"another coordinator re-initialised this range", epoch, id, p.epoch)
	}
	return p, nil
}

func (w *Worker) handleInit(body []byte) (msgType, []byte) {
	d := checkpoint.NewDecoder(body)
	if v := d.Uvarint(); v != protocolVersion {
		return errReply(fmt.Errorf("protocol version %d not supported (worker speaks %d)", v, protocolVersion))
	}
	spec := decodeSpec(d)
	lo, hi := d.Int(), d.Int()
	costs := d.F64s() // v3: the coordinator's cost snapshot for [lo, hi)
	if err := d.Finish(); err != nil {
		return errReply(fmt.Errorf("bad init: %w", err))
	}
	if err := population.ValidateShardRange(lo, hi, spec.Shards); err != nil {
		return errReply(fmt.Errorf("bad init: %w", err))
	}
	if len(costs) != 0 && len(costs) != hi-lo {
		return errReply(fmt.Errorf("bad init: %d cost priors for %d owned shards", len(costs), hi-lo))
	}
	wl, ok := w.workloads[spec.Workload]
	if !ok {
		return errReply(fmt.Errorf("unknown workload %q", spec.Workload))
	}
	cfg := wl.Build(spec.Agents, spec.Shards, spec.Seed, w.pool)
	if got := cfg.Normalized(); got.Shards != spec.Shards || got.Agents != spec.Agents {
		return errReply(fmt.Errorf("workload %q built shape (agents=%d shards=%d), coordinator expects (agents=%d shards=%d)",
			spec.Workload, got.Agents, got.Shards, spec.Agents, spec.Shards))
	}
	transport := population.NewLocalTransport(cfg, lo, hi)
	if len(costs) > 0 {
		// Seed the dispatch-order plane with the coordinator's view so the
		// first tick already issues this range's expensive shards first.
		if err := transport.SeedCosts(costs); err != nil {
			return errReply(err)
		}
	}
	loA, hiA := transport.AgentRange()
	p := &workerPop{
		transport: transport,
		loAgent:   loA,
		hiAgent:   hiA,
		mail:      make([][]core.Stimulus, spec.Agents),
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Re-init replaces: a restarted coordinator re-attaches to a live
	// worker by building the population fresh (and then installing state),
	// exactly as it would on a fresh worker process. The fresh epoch makes
	// any coordinator still holding the previous attach fail loudly
	// instead of silently stepping replaced state.
	w.epochs++
	p.epoch = w.epochs
	replaced := w.pops[spec.ID] != nil
	w.pops[spec.ID] = p
	w.log.Info("cluster: hosting range",
		"pop", spec.ID, "workload", spec.Workload,
		"shards_lo", lo, "shards_hi", hi, "agents_lo", loA, "agents_hi", hiA,
		"epoch", p.epoch, "replaced", replaced)
	e := checkpoint.NewEncoder()
	e.Uvarint(p.epoch)
	return msgOK, e.Bytes()
}

func (w *Worker) handleInstall(body []byte) (msgType, []byte) {
	d := checkpoint.NewDecoder(body)
	id := d.Str()
	epoch := d.Uvarint()
	rs := d.RangeState()
	if err := d.Finish(); err != nil {
		return errReply(fmt.Errorf("bad install: %w", err))
	}
	p, err := w.pop(id, epoch)
	if err != nil {
		return errReply(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.transport.Install(rs); err != nil {
		return errReply(err)
	}
	return msgOK, nil
}

func (w *Worker) handleTick(body []byte) (msgType, []byte) {
	d := checkpoint.NewDecoder(body)
	id := d.Str()
	epoch := d.Uvarint()
	tick := d.Int()
	if err := d.Err(); err != nil {
		return errReply(fmt.Errorf("bad tick: %w", err))
	}
	p, err := w.pop(id, epoch)
	if err != nil {
		return errReply(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Clear the scratch inboxes on every exit — a failed decode has
	// already filled some of them, and leaked mail would be injected
	// twice if the population is ever ticked again.
	defer p.clearMail()
	p.touched, err = decodeMailInto(d, p.mail, p.loAgent, p.hiAgent, p.touched[:0])
	if err == nil {
		err = d.Finish()
	}
	if err != nil {
		return errReply(fmt.Errorf("bad tick mail: %w", err))
	}
	outs, err := p.transport.Step(tick, p.mail)
	if err != nil {
		return errReply(err)
	}
	e := checkpoint.NewEncoder()
	encodeExchanges(e, outs)
	return msgTickOK, e.Bytes()
}

// maxMailScratchCap mirrors the engine-side mailbox retention policy: a
// scratch inbox one burst grew huge is released to the garbage collector
// instead of staying pinned at peak capacity for the worker's lifetime.
const maxMailScratchCap = 256

// clearMail empties every scratch inbox this tick touched, dropping
// over-grown slices entirely. Callers hold p.mu.
func (p *workerPop) clearMail() {
	for _, id := range p.touched {
		if cap(p.mail[id]) > maxMailScratchCap {
			p.mail[id] = nil
		} else {
			p.mail[id] = p.mail[id][:0]
		}
	}
}

func (w *Worker) handleExport(body []byte) (msgType, []byte) {
	d := checkpoint.NewDecoder(body)
	id := d.Str()
	epoch := d.Uvarint()
	if err := d.Finish(); err != nil {
		return errReply(fmt.Errorf("bad export: %w", err))
	}
	p, err := w.pop(id, epoch)
	if err != nil {
		return errReply(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rs, err := p.transport.Export()
	if err != nil {
		return errReply(err)
	}
	e := checkpoint.NewEncoder()
	e.RangeState(rs)
	return msgRange, e.Bytes()
}

func (w *Worker) handleExplain(body []byte) (msgType, []byte) {
	d := checkpoint.NewDecoder(body)
	id := d.Str()
	epoch := d.Uvarint()
	agent := d.Int()
	now := d.F64()
	if err := d.Finish(); err != nil {
		return errReply(fmt.Errorf("bad explain: %w", err))
	}
	p, err := w.pop(id, epoch)
	if err != nil {
		return errReply(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	text, err := p.transport.Explain(agent, now)
	if err != nil {
		return errReply(err)
	}
	e := checkpoint.NewEncoder()
	e.Str(text)
	return msgText, e.Bytes()
}

func (w *Worker) handleDrop(body []byte) (msgType, []byte) {
	d := checkpoint.NewDecoder(body)
	id := d.Str()
	epoch := d.Uvarint()
	if err := d.Finish(); err != nil {
		return errReply(fmt.Errorf("bad drop: %w", err))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Only the attach that owns the range may drop it; a stale
	// coordinator's shutdown must not tear down its successor's state.
	if p := w.pops[id]; p != nil && p.epoch == epoch {
		delete(w.pops, id)
		w.log.Info("cluster: dropped range", "pop", id, "epoch", epoch)
	}
	return msgOK, nil
}
