package learning

import "fmt"

// Stateful is implemented by learners whose complete mutable state can be
// exported as a flat float64 vector and reinstalled later. It exists for
// internal/checkpoint: a time-awareness process or meta monitor restored
// from a snapshot repositions its predictors and detectors with SetState
// and continues byte-identically. Structural parameters (window sizes,
// smoothing factors) are design-time configuration and are NOT part of the
// vector — SetState must be called on a learner constructed with the same
// parameters as the exporter.
type Stateful interface {
	// State exports the learner's complete mutable state.
	State() []float64
	// SetState reinstalls a state previously returned by State on an
	// identically configured learner.
	SetState(v []float64) error
}

func wantLen(name string, v []float64, n int) error {
	if len(v) != n {
		return fmt.Errorf("learning: %s state has %d values, want %d", name, len(v), n)
	}
	return nil
}

// State implements Stateful.
func (e *EWMA) State() []float64 { return []float64{float64(e.n), e.level} }

// SetState implements Stateful.
func (e *EWMA) SetState(v []float64) error {
	if err := wantLen("ewma", v, 2); err != nil {
		return err
	}
	e.n, e.level = int(v[0]), v[1]
	return nil
}

// State implements Stateful.
func (h *Holt) State() []float64 { return []float64{float64(h.n), h.level, h.trend} }

// SetState implements Stateful.
func (h *Holt) SetState(v []float64) error {
	if err := wantLen("holt", v, 3); err != nil {
		return err
	}
	h.n, h.level, h.trend = int(v[0]), v[1], v[2]
	return nil
}

// State implements Stateful: the AR(1) state is its observation count, the
// last observation, and the flattened RLS weight vector and inverse
// covariance.
func (a *AR1) State() []float64 {
	v := []float64{float64(a.n), a.last}
	v = append(v, a.rls.w...)
	for _, row := range a.rls.p {
		v = append(v, row...)
	}
	return v
}

// SetState implements Stateful.
func (a *AR1) SetState(v []float64) error {
	d := a.rls.d
	if err := wantLen("ar1", v, 2+d+d*d); err != nil {
		return err
	}
	a.n, a.last = int(v[0]), v[1]
	copy(a.rls.w, v[2:2+d])
	for i := range a.rls.p {
		copy(a.rls.p[i], v[2+d+i*d:2+d+(i+1)*d])
	}
	return nil
}

// State implements Stateful: the retained window, oldest first (ring
// rotation is not preserved — every reader is rotation-invariant given the
// oldest-first order).
func (m *WindowMean) State() []float64 {
	n := len(m.hist)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m.hist[(m.head+i)%n])
	}
	return out
}

// SetState implements Stateful.
func (m *WindowMean) SetState(v []float64) error {
	if len(v) > m.W {
		return fmt.Errorf("learning: window-mean state has %d values, window is %d", len(v), m.W)
	}
	m.hist = append(m.hist[:0], v...)
	m.head = 0
	return nil
}

// State implements Stateful.
func (p *PageHinkley) State() []float64 {
	return []float64{float64(p.n), p.mean, p.cumUp, p.minUp, p.cumDown, p.maxDown, float64(p.Detections)}
}

// SetState implements Stateful.
func (p *PageHinkley) SetState(v []float64) error {
	if err := wantLen("page-hinkley", v, 7); err != nil {
		return err
	}
	p.n, p.mean = int(v[0]), v[1]
	p.cumUp, p.minUp, p.cumDown, p.maxDown = v[2], v[3], v[4], v[5]
	p.Detections = int(v[6])
	return nil
}

// State implements Stateful.
func (m *MSETracker) State() []float64 { return []float64{m.sum, float64(m.n)} }

// SetState implements Stateful.
func (m *MSETracker) SetState(v []float64) error {
	if err := wantLen("mse-tracker", v, 2); err != nil {
		return err
	}
	m.sum, m.n = v[0], int(v[1])
	return nil
}
