// Command benchjson reads `go test -bench` output on stdin, writes the
// parsed results as a BENCH_*.json trajectory file, and (optionally) gates
// allocs/op against a committed baseline. tools/bench.sh is the canonical
// caller; CI runs it on every PR.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | \
//	  go run ./cmd/benchjson -out BENCH_ci.json \
//	    -baseline BENCH_PR4.json -check AgentStepFullStack,PopulationTick
//
// Exit status is 1 when any checked benchmark regressed (or vanished).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sacs/internal/benchjson"
)

func main() {
	var (
		out       = flag.String("out", "", "write parsed results to this BENCH_*.json file")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json to gate against")
		check     = flag.String("check", "", "comma-separated benchmark name prefixes to gate on allocs/op")
		floor     = flag.String("floor", "", "comma-separated name:metric specs whose custom metric must not drop >tolerance below the baseline")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth (and metric-floor shrink) over the baseline")
		note      = flag.String("note", "", "free-form note recorded in -out")
	)
	flag.Parse()

	results, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: parsed %d benchmarks\n", len(results))

	if *out != "" {
		f := &benchjson.File{Note: *note, Go: runtime.Version(),
			Benchmarks: make(map[string]benchjson.Entry, len(results))}
		for name, r := range results {
			f.Benchmarks[name] = benchjson.Entry{After: r}
		}
		if err := f.Write(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
	}

	if *baseline != "" && (*check != "" || *floor != "") {
		base, err := benchjson.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		var errs []error
		if *check != "" {
			prefixes := strings.Split(*check, ",")
			errs = append(errs, benchjson.Compare(base, results, prefixes, *tolerance)...)
		}
		if *floor != "" {
			specs := strings.Split(*floor, ",")
			errs = append(errs, benchjson.CompareFloors(base, results, specs, *tolerance)...)
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "FAIL:", e)
		}
		if len(errs) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: within %.0f%% of %s (allocs: %q, floors: %q)\n",
			*tolerance*100, *baseline, *check, *floor)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
