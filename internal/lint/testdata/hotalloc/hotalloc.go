// Package hotfix is the hotalloc fixture: allocation-prone constructs in a
// marked function (positive), pooled/pre-sized/cold shapes and unmarked
// functions (negative), and a justified allow.
package hotfix

import "fmt"

type item struct{ name string }

// Hot trips every hotalloc rule.
//
//sacs:hotpath
func Hot(items []item, buf []byte) string {
	var names []string
	for _, it := range items {
		names = append(names, it.name) // want hotalloc "append to names without capacity evidence"
	}
	m := map[string]int{} // want hotalloc "map literal allocates"
	_ = m
	s := fmt.Sprintf("%d", len(items))     // want hotalloc "fmt.Sprintf allocates"
	b := string(buf)                       // want hotalloc "conversion copies"
	v := any(len(items))                   // want hotalloc "conversion to interface any boxes"
	fn := func() int { return len(names) } // want hotalloc "closure captures names"
	_ = fn()
	_, _ = b, v
	return s
}

// HotClean shows the sanctioned shapes: pre-sized make, reslice of a
// reused buffer, and error construction on a returning (cold) branch.
//
//sacs:hotpath
func HotClean(items []item, buf []item) ([]item, error) {
	out := make([]item, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	scratch := buf[:0]
	scratch = append(scratch, items...)
	if len(scratch) == 0 {
		return nil, fmt.Errorf("hotfix: empty batch")
	}
	return out, nil
}

// HotAllowed keeps a deliberate allocation with a justification.
//
//sacs:hotpath
func HotAllowed(n int) string {
	s := fmt.Sprintf("agent-%d", n) //sacslint:allow hotalloc fixture: runs once per agent lifetime, not per tick
	return s
}

// NotHot is unmarked: the same constructs pass untouched.
func NotHot(items []item) string {
	var names []string
	for _, it := range items {
		names = append(names, it.name)
	}
	return fmt.Sprintf("%v", names)
}
