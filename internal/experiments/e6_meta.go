package experiments

import (
	"fmt"
	"math/rand"

	"sacs/internal/core"
	"sacs/internal/learning"
	"sacs/internal/runner"
	"sacs/internal/stats"
)

// E6MetaUnderDrift pits fixed learning strategies against the meta
// portfolio (a learner-over-learners) on a decision problem whose reward
// structure shifts regime: under drift the portfolio should track the best
// per-phase strategy, and on a stationary problem it should pay only a small
// overhead versus the best fixed learner — the paper's meta-self-awareness
// payoff.
func E6MetaUnderDrift(cfg Config) *Result {
	cfg = cfg.defaults()
	steps := cfg.ticks(30000)
	const arms = 10
	const phaseLen = 2500

	table := stats.NewTable(
		fmt.Sprintf("E6 meta-self-awareness: %d-armed bandit, %d steps, phase change every %d (drift case), %d seeds",
			arms, steps, phaseLen, cfg.Seeds),
		"reward-stationary", "regret-stationary", "reward-drift", "regret-drift", "switches")

	type mkLearner func(rng *rand.Rand) learning.Bandit
	systems := []struct {
		name string
		mk   mkLearner
	}{
		{"eps-greedy (fixed)", func(rng *rand.Rand) learning.Bandit {
			return learning.NewEpsilonGreedy(arms, 0.1, rng)
		}},
		{"ucb1 (fixed)", func(rng *rand.Rand) learning.Bandit {
			return learning.NewUCB1(arms)
		}},
		{"softmax (fixed)", func(rng *rand.Rand) learning.Bandit {
			return learning.NewSoftmax(arms, 0.1, rng)
		}},
		{"exp3 (adversarial)", func(rng *rand.Rand) learning.Bandit {
			return learning.NewEXP3(arms, 0.07, rng)
		}},
		{"sliding-ucb", func(rng *rand.Rand) learning.Bandit {
			return learning.NewSlidingUCB(arms, 150)
		}},
		{"meta-portfolio", func(rng *rand.Rand) learning.Bandit {
			return core.NewPortfolio(100,
				learning.NewEpsilonGreedy(arms, 0.1, rng),
				learning.NewUCB1(arms),
				learning.NewSlidingUCB(arms, 150),
				learning.NewSoftmax(arms, 0.1, rng),
			)
		}},
	}

	// run returns mean reward and mean per-step regret against the current
	// best arm.
	run := func(b learning.Bandit, drift bool, seed int64) (reward, regret float64) {
		rng := rand.New(rand.NewSource(seed))
		means := make([]float64, arms)
		reroll := func() {
			for i := range means {
				means[i] = 0.2 + 0.6*rng.Float64()
			}
			// One clearly best arm per phase.
			means[rng.Intn(arms)] = 0.9
		}
		reroll()
		best := func() float64 {
			b := means[0]
			for _, m := range means[1:] {
				if m > b {
					b = m
				}
			}
			return b
		}
		var sumR, sumRegret float64
		for t := 0; t < steps; t++ {
			if drift && t > 0 && t%phaseLen == 0 {
				reroll()
			}
			arm := b.Select()
			r := 0.0
			if rng.Float64() < means[arm] {
				r = 1
			}
			b.Update(arm, r)
			sumR += r
			sumRegret += best() - means[arm]
		}
		return sumR / float64(steps), sumRegret / float64(steps)
	}

	names := make([]string, len(systems))
	for i, sys := range systems {
		names[i] = sys.name
	}
	rows := runner.Rows(cfg.Pool, "E6", names, cfg.Seeds, func(sys, s int) []float64 {
		b1 := systems[sys].mk(rand.New(rand.NewSource(int64(100 + s))))
		r1, g1 := run(b1, false, int64(200+s))
		b2 := systems[sys].mk(rand.New(rand.NewSource(int64(100 + s))))
		r2, g2 := run(b2, true, int64(200+s))
		sw := 0.0
		if p, ok := b2.(*core.Portfolio); ok {
			sw = float64(p.Switches)
		}
		return []float64{r1, g1, r2, g2, sw}
	})
	for i, name := range names {
		table.AddRow(name, rows[i]...)
	}

	table.AddNote("expected shape: exploit-heavy fixed learners (eps-greedy, softmax, exp3) " +
		"collapse under drift; the meta portfolio stays within ~5%% of the best-in-hindsight " +
		"specialist in BOTH regimes without design-time knowledge of which specialist fits")
	return resultFor("E6", table)
}
