package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sacs/internal/checkpoint"
	"sacs/internal/core"
	"sacs/internal/population"
)

// The wire protocol is deliberately minimal: every message is one frame —
//
//	offset  size  field
//	0       4     frame length N, uint32 little-endian (type byte + body)
//	4       1     message type
//	5       N-1   body, spelled with the checkpoint codec's primitives
//
// — and every request is answered by exactly one reply frame on the same
// connection (msgErr is a valid reply to anything). The barrier protocol is
// lock-step per population, so there is no pipelining to manage; one
// in-flight request per connection, guarded by the caller.
//
// Integrity: TCP already guarantees ordered, checksummed delivery, so
// frames carry no CRC (unlike snapshot files, which must survive disks).
// Length and per-field bounds are still validated — a confused peer fails
// with an error, never an OOM or a panic.

// maxFrame bounds one frame (1 GiB): far above any real tick exchange or
// range state, far below a length-field attack.
const maxFrame = 1 << 30

// protocolVersion is negotiated implicitly: it is the first body byte of
// every init message, and a worker refuses versions it does not speak.
//
// v2 added StepNanos to tick-reply exchanges (observability: the
// coordinator decomposes tick wall time into compute vs. barrier wait even
// for remote shards).
//
// v3 added the coordinator's per-shard cost snapshot to msgInit (so a
// worker's first tick dispatches in the established LPT order) and the
// Steals counter to tick-reply exchanges. Both are observation-only: like
// StepNanos they never feed stepping, so v3 ticks are byte-identical to v2
// ticks modulo the two new varint fields.
//
// v4 made shard ownership elastic: a worker may host several disjoint
// shard ranges of one population (so msgInit accepts an empty range — an
// admitted member holding no shards yet), msgExport replies msgRanges (one
// RangeState per hosted contiguous range), tick requests carry mail for
// every owned agent interval and tick replies concatenate the owned
// ranges' exchanges in shard index order, and the msgMigrate / msgAdopt /
// msgRelease triplet moves a shard range between workers at a tick
// barrier. Ownership changes never touch the moving state's bytes, so v4
// runs — migrations included — stay byte-identical to v3 and to the
// single-process engine.
const protocolVersion = 4

type msgType byte

// Every post-init request names the population and carries the attach
// epoch the worker returned from msgInit. The epoch is the split-brain
// guard: a second coordinator initialising the same id bumps it, and the
// first coordinator's next request fails loudly instead of silently
// stepping replaced state.
const (
	msgErr     msgType = iota // body: error string
	msgOK                     // empty, except init's reply: attach epoch
	msgInit                   // version, population spec + owned shard range
	msgInstall                // id, epoch, RangeState (state transfer)
	msgTick                   // id, epoch, tick, owned agents' mailboxes
	msgTickOK                 // per-owned-shard exchanges
	msgExport                 // id, epoch
	msgRange                  // RangeState
	msgExplain                // id, epoch, agent, now
	msgText                   // rendered explanation
	msgDrop                   // id, epoch (dropped only if the epoch still owns it)
	msgPing                   // empty body (readiness probe)
	msgMigrate                // id, epoch, shard range → msgRange (read-only drain of a hosted subrange)
	msgAdopt                  // id, epoch, RangeState, cost priors (install a new range next to existing ones)
	msgRelease                // id, epoch, shard range (forget it: a migration's source-side commit, or a failed adopt's rollback)
	msgRanges                 // count-prefixed RangeStates in shard order (export reply)
)

var errFrameTooLarge = errors.New("cluster: frame exceeds size limit")

// writeFrame writes one frame. The caller flushes.
func writeFrame(w io.Writer, t msgType, body []byte) error {
	n := len(body) + 1
	if n > maxFrame {
		return fmt.Errorf("%w (%d bytes)", errFrameTooLarge, n)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame, bounding the allocation by maxFrame.
func readFrame(r io.Reader) (msgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w (declared %d bytes)", errFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return msgType(buf[0]), buf[1:], nil
}

// Spec identifies one population a cluster hosts: the shape every process
// must agree on. Shards must already be normalized
// (population.Config.Normalized); the coordinator's transport takes care of
// that before any spec crosses the wire.
type Spec struct {
	ID       string
	Workload string
	Agents   int
	Shards   int
	Seed     int64

	// Costs optionally carries the coordinator's per-shard cost snapshot
	// (population.Engine.ShardCosts: estimate nanos, shard index order,
	// len Shards or empty). Each worker receives its owned slice at init
	// and seeds its transport's cost model with it, so after a restart or
	// rebalance the very first tick already dispatches expensive shards
	// first. Advisory and observation-only: it is not part of the spec's
	// shape identity and never crosses in encodeSpec — the init message
	// carries it separately.
	Costs []float64
}

func encodeSpec(e *checkpoint.Encoder, s Spec) {
	e.Str(s.ID)
	e.Str(s.Workload)
	e.Int(s.Agents)
	e.Int(s.Shards)
	e.Varint(s.Seed)
}

func decodeSpec(d *checkpoint.Decoder) Spec {
	return Spec{
		ID:       d.Str(),
		Workload: d.Str(),
		Agents:   d.Int(),
		Shards:   d.Int(),
		Seed:     d.Varint(),
	}
}

// span is one owned agent interval [lo, hi). A v4 worker may own several
// disjoint shard ranges, so mail crosses the wire per interval list.
type span struct{ lo, hi int }

// encodeMail appends the non-empty mailboxes of the given agent intervals
// as (agent id, stimuli) pairs. Spans must be sorted and disjoint, so the
// pairs come out in agent id order regardless of placement.
func encodeMail(e *checkpoint.Encoder, mail [][]core.Stimulus, spans []span) {
	boxes := 0
	for _, sp := range spans {
		for id := sp.lo; id < sp.hi; id++ {
			if len(mail[id]) > 0 {
				boxes++
			}
		}
	}
	e.Uvarint(uint64(boxes))
	for _, sp := range spans {
		for id := sp.lo; id < sp.hi; id++ {
			if len(mail[id]) == 0 {
				continue
			}
			e.Int(id)
			e.Uvarint(uint64(len(mail[id])))
			for _, st := range mail[id] {
				e.Stimulus(st)
			}
		}
	}
}

// decodeMailInto fills the non-empty boxes into mail (global-indexed,
// len agents) and returns the ids it touched so the caller can clear them
// cheaply after the tick. Every id must fall inside one of the owned
// agent intervals.
func decodeMailInto(d *checkpoint.Decoder, mail [][]core.Stimulus, spans []span, touched []int) ([]int, error) {
	boxes := d.Count(2)
	for i := 0; i < boxes; i++ {
		id := d.Int()
		n := d.Count(1)
		if err := d.Err(); err != nil {
			return touched, err
		}
		owned := false
		for _, sp := range spans {
			if id >= sp.lo && id < sp.hi {
				owned = true
				break
			}
		}
		if !owned {
			return touched, fmt.Errorf("cluster: mailbox for agent %d outside owned ranges", id)
		}
		box := mail[id][:0]
		for j := 0; j < n; j++ {
			box = append(box, d.Stimulus())
		}
		mail[id] = box
		touched = append(touched, id)
	}
	return touched, d.Err()
}

// encodeExchange appends one shard's tick result.
func encodeExchange(e *checkpoint.Encoder, o *population.ShardExchange) {
	e.Int(o.Delivered)
	e.Int(o.Actions)
	e.Varint(o.StepNanos)
	e.Int(o.Steals)
	e.Online(o.Observed.State())
	e.Uvarint(uint64(len(o.Msgs)))
	for _, m := range o.Msgs {
		e.Int(m.To)
		e.Stimulus(m.Stim)
	}
}

// decodeExchange decodes one shard's tick result into the pooled o
// (reusing Msgs capacity between ticks).
func decodeExchange(d *checkpoint.Decoder, o *population.ShardExchange) error {
	o.Delivered = d.Int()
	o.Actions = d.Int()
	o.StepNanos = d.Varint()
	o.Steals = d.Int()
	o.Observed.SetState(d.Online())
	msgs := d.Count(2)
	if err := d.Err(); err != nil {
		return err
	}
	o.Msgs = o.Msgs[:0]
	for j := 0; j < msgs; j++ {
		to := d.Int()
		o.Msgs = append(o.Msgs, population.Routed{To: to, Stim: d.Stimulus()})
	}
	return d.Err()
}
