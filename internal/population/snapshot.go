package population

import (
	"fmt"
	"time"

	"sacs/internal/core"
	"sacs/internal/stats"
)

// Snapshot is the complete exported state of an Engine at a tick barrier:
// the tick counter, run counters and work history, every RNG stream's
// position, the pending (already routed, not yet delivered) mailboxes, and
// every agent's exported state. It is plain data sharing no memory with the
// engine — internal/checkpoint serialises it, and Restore rebuilds a live
// engine from it.
//
// The determinism contract (DESIGN.md): for a population whose agents keep
// their mutable state in the captured components — knowledge store, goal
// switcher, built-in awareness processes, and the RNG streams the engine
// hands out — Restore(cfg, e.Snapshot()) continues byte-identically to the
// uninterrupted run, at any worker count and across process restarts.
type Snapshot struct {
	// Name, Agents, Shards and Seed echo the exporting Config; Restore
	// validates them against the rebuilding Config so a snapshot cannot be
	// silently resumed into a differently shaped population.
	Name   string
	Agents int
	Shards int
	Seed   int64

	Tick                                int
	Steps, Messages, Delivered, Actions int64
	Observed                            stats.OnlineState
	Work                                []float64 // recent per-tick work proxy (see WorkWindow)

	ShardRNG []uint64 // xrand stream positions, one per shard
	AgentRNG []uint64 // xrand stream positions, one per agent

	// Mail holds each agent's pending inbox: stimuli routed (or enqueued
	// externally) before the snapshot, to be injected at the next tick.
	Mail [][]core.Stimulus

	AgentStates []core.AgentState
}

// Range extracts the slice of the snapshot covering shards [lo, hi) — the
// state-transfer payload that initialises a cluster worker hosting that
// range. The returned RangeState shares no memory with the snapshot's
// slices' backing arrays beyond the elements themselves (states are plain
// data).
func (s *Snapshot) Range(lo, hi int) (*RangeState, error) {
	if err := ValidateShardRange(lo, hi, s.Shards); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if len(s.ShardRNG) != s.Shards || len(s.AgentRNG) != s.Agents || len(s.AgentStates) != s.Agents {
		return nil, fmt.Errorf("population: snapshot internally inconsistent "+
			"(%d shard streams, %d agent streams, %d agent states for agents=%d shards=%d)",
			len(s.ShardRNG), len(s.AgentRNG), len(s.AgentStates), s.Agents, s.Shards)
	}
	bounds := Partition(s.Agents, s.Shards)
	return &RangeState{
		LoShard: lo, HiShard: hi, LoAgent: bounds[lo], HiAgent: bounds[hi],
		ShardRNG:    s.ShardRNG[lo:hi],
		AgentRNG:    s.AgentRNG[bounds[lo]:bounds[hi]],
		AgentStates: s.AgentStates[bounds[lo]:bounds[hi]],
	}, nil
}

// Snapshot exports the engine's complete state. It must be called between
// ticks (never while a Tick is in flight) and fails when an agent carries
// state the checkpoint layer cannot serialise (see core.Agent.State) or, on
// a cluster transport, when a worker cannot be reached.
func (e *Engine) Snapshot() (*Snapshot, error) {
	if e.broken != nil {
		// A failed tick may have half-applied on remote executors; a
		// snapshot taken now could mix this engine's tick counter with
		// later agent state and resume into silent divergence.
		return nil, fmt.Errorf("population: snapshot: engine poisoned by earlier transport failure: %w", e.broken)
	}
	if m := e.cfg.Metrics; m != nil {
		defer func(start time.Time) {
			m.phaseSnap.Add(time.Since(start).Nanoseconds()) //sacslint:allow detsource observation-only: snapshot-phase timing, never read by agent logic
		}(time.Now()) //sacslint:allow detsource observation-only: snapshot-phase timing, never read by agent logic
	}
	rs, err := e.transport.Export()
	if err != nil {
		return nil, fmt.Errorf("population: snapshot at tick %d: %w", e.tick, err)
	}
	if len(rs.ShardRNG) != e.cfg.Shards || len(rs.AgentRNG) != e.cfg.Agents ||
		len(rs.AgentStates) != e.cfg.Agents {
		return nil, fmt.Errorf("population: snapshot at tick %d: transport exported "+
			"%d shard streams, %d agent streams, %d agent states for shards=%d agents=%d",
			e.tick, len(rs.ShardRNG), len(rs.AgentRNG), len(rs.AgentStates), e.cfg.Shards, e.cfg.Agents)
	}
	s := &Snapshot{
		Name:      e.cfg.Name,
		Agents:    e.cfg.Agents,
		Shards:    e.cfg.Shards,
		Seed:      e.cfg.Seed,
		Tick:      e.tick,
		Steps:     e.steps,
		Messages:  e.messages,
		Delivered: e.delivered,
		Actions:   e.actions,
		Observed:  e.lastObserved.State(),
		Work:      e.workHistory(),
		ShardRNG:  rs.ShardRNG,
		AgentRNG:  rs.AgentRNG,
		Mail:      make([][]core.Stimulus, e.cfg.Agents),
	}
	for i, inbox := range e.cur {
		if len(inbox) > 0 {
			s.Mail[i] = append([]core.Stimulus(nil), inbox...)
		}
	}
	s.AgentStates = rs.AgentStates
	return s, nil
}

// Restore builds an engine from cfg exactly as New does, then reinstalls
// the snapshot: RNG stream positions, agent states, pending mailboxes, tick
// and counters. cfg must describe the same population the snapshot was
// exported from (same workload builder, agent count, shard count and seed);
// shape mismatches are errors before any state is touched.
//
// Construction runs cfg.New with each agent's stream at its seed position —
// identical to the original construction — and only afterwards repositions
// the streams to their snapshot state. Agent factories therefore need no
// special resume mode, but any mutable state a factory hides in closures
// (rather than in the store or behind the handed-out RNG) will silently
// reset; DESIGN.md spells out this caller obligation.
func Restore(cfg Config, s *Snapshot) (*Engine, error) {
	e := New(cfg)
	if err := e.install(s); err != nil {
		return nil, err
	}
	return e, nil
}

// RestoreWithTransport is Restore for an engine whose agents live behind t:
// the transport's executors must already hold freshly constructed agents
// (each cluster worker runs cfg.New exactly as construction does), and
// Install pushes each range its slice of the snapshot. See
// NewWithTransport for what cfg must carry.
func RestoreWithTransport(cfg Config, t Transport, s *Snapshot) (*Engine, error) {
	e, err := NewWithTransport(cfg, t)
	if err != nil {
		return nil, err
	}
	if err := e.install(s); err != nil {
		return nil, err
	}
	return e, nil
}

// install validates the snapshot against the engine's shape and overlays it
// onto the freshly built engine and its transport.
func (e *Engine) install(s *Snapshot) error {
	if e.cfg.Name != s.Name {
		return fmt.Errorf("population: restore: config name %q, snapshot of %q", e.cfg.Name, s.Name)
	}
	if e.cfg.Agents != s.Agents || e.cfg.Shards != s.Shards || e.cfg.Seed != s.Seed {
		return fmt.Errorf(
			"population: restore: config (agents=%d shards=%d seed=%d) does not match snapshot (agents=%d shards=%d seed=%d)",
			e.cfg.Agents, e.cfg.Shards, e.cfg.Seed, s.Agents, s.Shards, s.Seed)
	}
	if len(s.ShardRNG) != s.Shards || len(s.AgentRNG) != s.Agents ||
		len(s.Mail) != s.Agents || len(s.AgentStates) != s.Agents {
		return fmt.Errorf("population: restore: snapshot internally inconsistent "+
			"(%d shard streams, %d agent streams, %d mailboxes, %d agent states for agents=%d shards=%d)",
			len(s.ShardRNG), len(s.AgentRNG), len(s.Mail), len(s.AgentStates), s.Agents, s.Shards)
	}
	if err := e.transport.Install(&RangeState{
		LoShard: 0, HiShard: s.Shards, LoAgent: 0, HiAgent: s.Agents,
		ShardRNG: s.ShardRNG, AgentRNG: s.AgentRNG, AgentStates: s.AgentStates,
	}); err != nil {
		return err
	}
	for i, inbox := range s.Mail {
		if len(inbox) > 0 {
			e.cur[i] = append(e.cur[i][:0], inbox...)
		}
	}
	e.tick = s.Tick
	e.extPending = 0
	e.steps, e.messages, e.delivered, e.actions = s.Steps, s.Messages, s.Delivered, s.Actions
	e.lastObserved.SetState(s.Observed)
	// Refill the work ring oldest-first. Snapshots written by the current
	// format hold at most WorkWindow entries; older formats could carry up
	// to 2·WorkWindow−1, of which the most recent WorkWindow are kept.
	w := s.Work
	if len(w) > WorkWindow {
		w = w[len(w)-WorkWindow:]
	}
	e.work = append(e.work[:0], w...)
	e.workHead = 0
	return nil
}

// Enqueue queues an externally produced stimulus for delivery to agent `to`
// at the start of the next Tick, exactly as if a peer had sent it at the
// previous tick's barrier. It is how a hosting service (internal/serve)
// ingests outside traffic into a running population. Enqueue must be called
// from the engine's goroutine (never while a Tick is in flight); pending
// stimuli are part of the engine's Snapshot.
func (e *Engine) Enqueue(to int, s core.Stimulus) error {
	if to < 0 || to >= e.cfg.Agents {
		return fmt.Errorf("population: enqueue to out-of-range agent %d (population %d)", to, e.cfg.Agents)
	}
	if e.cfg.MailboxBudget > 0 && e.extPending >= e.cfg.MailboxBudget {
		return fmt.Errorf("population: %d stimuli pending delivery (budget %d): %w",
			e.extPending, e.cfg.MailboxBudget, ErrMailboxFull)
	}
	box := e.cur[to]
	if box == nil {
		box = e.grabBox()
	}
	e.cur[to] = append(box, s)
	e.extPending++
	return nil
}

// PendingExternal reports the number of externally enqueued stimuli waiting
// for the next tick. It resets to zero at every tick barrier (delivery) and
// after Restore (pending mail restored from a snapshot was budgeted when it
// was first accepted and is never re-counted).
func (e *Engine) PendingExternal() int { return e.extPending }
