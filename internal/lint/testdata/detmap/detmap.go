// Package detmapfix is the detmap fixture: map ranges whose iteration
// order leaks (positive), the sanctioned collect-then-sort idiom and
// order-insensitive bodies (negative), and a justified allow.
package detmapfix

import "sort"

// Encoder stands in for the checkpoint codec's encoder.
type Encoder struct{ buf []byte }

// Str appends a string record.
func (e *Encoder) Str(s string) { e.buf = append(e.buf, s...) }

// MeanForecastError re-introduces the PR 3 TimeProcess bug: a float sum
// accumulated in map-iteration order fed checkpointed state, so two runs
// of the same simulation could diverge after a restore.
func MeanForecastError(errs map[string]float64) float64 {
	var sum float64
	for _, e := range errs {
		sum += e // want detmap "floating-point accumulation into sum"
	}
	return sum / float64(len(errs))
}

// ScaledError is the disguised form of the same bug.
func ScaledError(errs map[string]float64) float64 {
	var sum float64
	for _, e := range errs {
		sum = sum + e*0.5 // want detmap "floating-point accumulation into sum"
	}
	return sum
}

// EncodeMeta writes map entries straight to the encoder.
func EncodeMeta(e *Encoder, meta map[string]string) {
	for k, v := range meta {
		e.Str(k) // want detmap "Encoder.Str inside a map range"
		e.Str(v) // want detmap "Encoder.Str inside a map range"
	}
}

// UnsortedKeys builds a key slice and never sorts it.
func UnsortedKeys(meta map[string]string) []string {
	var keys []string
	for k := range meta {
		keys = append(keys, k) // want detmap "append to keys"
	}
	return keys
}

// SortedKeys is the sanctioned idiom (internal/checkpoint.encodePayload):
// collect, then sort before the order can be observed.
func SortedKeys(meta map[string]string) []string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count is order-insensitive: integer counting passes untouched.
func Count(meta map[string]string) int {
	n := 0
	for range meta {
		n++
	}
	return n
}

// AllowedSum keeps a map-ordered float sum with a justification.
func AllowedSum(errs map[string]float64) float64 {
	var sum float64
	for _, e := range errs {
		sum += e //sacslint:allow detmap fixture: the sum is diagnostic-only and never compared or encoded
	}
	return sum
}
