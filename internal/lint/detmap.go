package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` over a map whose body has an iteration-order-
// sensitive effect — the bug class behind the PR 3 MeanForecastError
// nondeterminism, where a float sum accumulated in map order leaked into
// checkpointed state. Three effects are order-sensitive:
//
//   - writing to an encoder (a method call on a type named Encoder, or a
//     Write*/Encode call) — bytes come out in map order;
//   - appending to a slice declared outside the loop, unless the function
//     sorts that slice after the loop (the internal/checkpoint sorted-keys
//     idiom is the sanctioned pattern);
//   - accumulating a floating-point sum or product into a variable
//     declared outside the loop — float arithmetic is not associative.
//
// Order-insensitive bodies (counting, set building, per-value mutation)
// pass untouched. A site whose order-sensitivity genuinely cannot matter
// is silenced with `//sacslint:allow detmap <reason>`.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flags map iteration whose order leaks into encoded, compared or float-accumulated results",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, file, rng)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	fn := enclosingFuncDecl(file, rng.Pos())

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := encoderWrite(info, n); ok {
				pass.Reportf(n.Pos(), "%s inside a map range emits bytes in map-iteration order; iterate sorted keys instead (see internal/checkpoint.encodePayload)", name)
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, info, fn, rng, n)
		}
		return true
	})
}

// encoderWrite reports whether call writes to an encoder-like receiver.
func encoderWrite(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv := recvTypeName(info, call)
	if recv == "Encoder" {
		return "Encoder." + sel.Sel.Name, true
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		// Only when the receiver is a named type (io.Writer implementors,
		// json/gob encoders) — not e.g. a map of funcs.
		if recv != "" {
			return recv + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

func checkMapRangeAssign(pass *Pass, info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	// Float accumulation: x += v, x -= v, x *= v, or x = x + v forms.
	if len(as.Lhs) == 1 {
		lhs := baseIdent(as.Lhs[0])
		if lhs != nil && declaredOutside(info, lhs, rng) && isFloat(info.TypeOf(as.Lhs[0])) {
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
				pass.Reportf(as.Pos(), "floating-point accumulation into %s in map-iteration order is nondeterministic (float addition is not associative); iterate sorted keys", lhs.Name)
				return
			case token.ASSIGN:
				if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && selfReferential(info, lhs, bin) {
					pass.Reportf(as.Pos(), "floating-point accumulation into %s in map-iteration order is nondeterministic (float addition is not associative); iterate sorted keys", lhs.Name)
					return
				}
			}
		}
	}
	// Appends to a slice that outlives the loop, without a sort afterwards.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) || len(call.Args) == 0 || i >= len(as.Lhs) {
			continue
		}
		target := baseIdent(as.Lhs[i])
		if target == nil || !declaredOutside(info, target, rng) {
			continue
		}
		if fn != nil && sortedAfter(info, fn, target, rng.End()) {
			continue // the sanctioned collect-then-sort idiom
		}
		pass.Reportf(call.Pos(), "append to %s inside a map range builds a slice in map-iteration order with no sort afterwards; sort it (or the keys) before the order can be observed", target.Name)
	}
}

// selfReferential reports whether ident's object appears inside expr — the
// `s = s + v` accumulation shape.
func selfReferential(info *types.Info, id *ast.Ident, expr ast.Expr) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if other, ok := n.(*ast.Ident); ok && info.Uses[other] == obj && obj != nil {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether id's object is declared outside the
// range statement (so writes to it survive the loop).
func declaredOutside(info *types.Info, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning
// target's object appears after pos inside fn — evidence the map-ordered
// slice is reordered before anyone can observe the iteration order.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, target *ast.Ident, pos token.Pos) bool {
	obj := info.Uses[target]
	if obj == nil {
		obj = info.Defs[target]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
