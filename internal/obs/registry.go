package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates the metric families a Registry can hold.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instrument inside a family. Exactly one of the
// instrument fields is set, matching the family's kind.
type series struct {
	labels string // rendered `k="v",k2="v2"` form, "" for unlabelled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	scale      float64 // raw unit → exposition unit (1e-9 for ns → s)
	bounds     []int64 // histogram families only
	series     map[string]*series
}

// Registry holds instruments and renders them. Registration is idempotent:
// asking for an existing (name, labels) series returns the existing
// instrument, so a re-attached component cannot double-register. Asking
// for an existing name with a different kind, scale, help or bucket layout
// panics — that is a naming collision, a programmer error.
//
// Registration takes a lock and allocates (cold path); the returned
// instruments are lock- and allocation-free (hot path).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or returns) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.ScaledCounter(name, help, 1, labels...)
}

// ScaledCounter is Counter with a render scale: the raw int64 count is
// multiplied by scale in the exposition and snapshot. Use Seconds for
// counters accumulating nanoseconds.
func (r *Registry) ScaledCounter(name, help string, scale float64, labels ...Label) *Counter {
	s := r.register(name, help, counterKind, scale, nil, labels)
	return s.c
}

// Gauge registers (or returns) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.ScaledGauge(name, help, 1, labels...)
}

// ScaledGauge is Gauge with a render scale (see ScaledCounter).
func (r *Registry) ScaledGauge(name, help string, scale float64, labels ...Label) *Gauge {
	s := r.register(name, help, gaugeKind, scale, nil, labels)
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time — for values that already live somewhere else (uptime, queue
// lengths owned by another structure). fn must be safe to call from any
// goroutine and must not call back into this registry (renders run it
// under the registry lock).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, gaugeFuncKind, 1, nil, labels).fn = fn
}

// Histogram registers (or returns) the histogram name{labels} over bounds
// (raw-unit upper bounds, see NewHistogram), rendered with the given scale.
func (r *Registry) Histogram(name, help string, scale float64, bounds []int64, labels ...Label) *Histogram {
	s := r.register(name, help, histogramKind, scale, bounds, labels)
	return s.h
}

func (r *Registry) register(name, help string, k kind, scale float64, bounds []int64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, scale: scale, series: make(map[string]*series)}
		if k == histogramKind {
			// Validate and copy once per family; every series shares the
			// layout so they stay mergeable.
			f.bounds = NewHistogram(bounds).bounds
		}
		r.families[name] = f
	} else {
		if f.kind != k || f.scale != scale || f.help != help {
			panic(fmt.Sprintf("obs: re-registering %q as %s (scale %g), registered as %s (scale %g)",
				name, k, scale, f.kind, f.scale))
		}
		if k == histogramKind && !equalBounds(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: re-registering histogram %q with different bucket bounds", name))
		}
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch k {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case gaugeFuncKind:
			// fn is filled by the caller; re-registration keeps the first.
		case histogramKind:
			s.h = NewHistogram(f.bounds)
		}
		f.series[ls] = s
	}
	return s
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName checks the Prometheus metric/label name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels formats labels as `k="v",k2="v2"`, sorted by key, with
// label values escaped. Done once at registration.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) || strings.Contains(l.Key, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatVal renders a float with the shortest round-tripping decimal form,
// the same 'g' spelling the experiment CSVs use — stable across runs and
// platforms for equal values.
func formatVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// seriesName joins a family name and a rendered label string.
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLE appends an le label to an already-rendered label string. le sorts
// after every lower-case label key we emit, and Prometheus does not require
// sorted label order anyway — stability, not ordering, is the contract.
func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

// WriteExposition renders every family in the Prometheus text format,
// sorted by family name and then by series label string: equal registry
// state produces equal bytes.
func (r *Registry) WriteExposition(w io.Writer) error {
	// The whole render runs under the registry lock: rendering and
	// registration are both cold paths, and the lock is what keeps a
	// scrape from racing a component registering new series. Instrument
	// updates need no lock — the hot path stays wait-free.
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) sorted() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

func (f *family) render(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.sorted() {
		switch f.kind {
		case counterKind:
			fmt.Fprintf(b, "%s %s\n", seriesName(f.name, s.labels), formatVal(float64(s.c.Value())*f.scale))
		case gaugeKind:
			fmt.Fprintf(b, "%s %s\n", seriesName(f.name, s.labels), formatVal(float64(s.g.Value())*f.scale))
		case gaugeFuncKind:
			v := 0.0
			if s.fn != nil {
				v = s.fn()
			}
			fmt.Fprintf(b, "%s %s\n", seriesName(f.name, s.labels), formatVal(v))
		case histogramKind:
			counts := s.h.BucketCounts()
			var cum int64
			for i, bound := range s.h.Bounds() {
				cum += counts[i]
				le := formatVal(float64(bound) * f.scale)
				fmt.Fprintf(b, "%s %d\n", seriesName(f.name+"_bucket", withLE(s.labels, le)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(b, "%s %d\n", seriesName(f.name+"_bucket", withLE(s.labels, "+Inf")), cum)
			fmt.Fprintf(b, "%s %s\n", seriesName(f.name+"_sum", s.labels), formatVal(float64(s.h.Sum())*f.scale))
			fmt.Fprintf(b, "%s %d\n", seriesName(f.name+"_count", s.labels), cum)
		}
	}
}

// HistogramValue is a histogram's JSON snapshot shape.
type HistogramValue struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // cumulative, keyed by scaled le ("+Inf" last)
}

// Value snapshots the histogram into its JSON shape, rendering sum and
// bucket bounds through scale (the same scale the histogram was registered
// with).
func (h *Histogram) Value(scale float64) HistogramValue {
	counts := h.BucketCounts()
	hv := HistogramValue{
		Sum:     float64(h.Sum()) * scale,
		Buckets: make(map[string]int64, len(counts)),
	}
	var cum int64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		hv.Buckets[formatVal(float64(bound)*scale)] = cum
	}
	cum += counts[len(counts)-1]
	hv.Buckets["+Inf"] = cum
	hv.Count = cum
	return hv
}

// Snapshot returns every series' current value as a flat map keyed by
// `name` or `name{labels}`: counters and gauges as scaled float64s,
// histograms as HistogramValue. This is the /debug/vars JSON shape.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make(map[string]any)
	for _, f := range fams {
		for _, s := range f.sorted() {
			key := seriesName(f.name, s.labels)
			switch f.kind {
			case counterKind:
				out[key] = float64(s.c.Value()) * f.scale
			case gaugeKind:
				out[key] = float64(s.g.Value()) * f.scale
			case gaugeFuncKind:
				if s.fn != nil {
					out[key] = s.fn()
				} else {
					out[key] = 0.0
				}
			case histogramKind:
				out[key] = s.h.Value(f.scale)
			}
		}
	}
	return out
}
