package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndSeries(t *testing.T) {
	r := NewRecorder()
	r.Record("lat", 1, 10)
	r.Record("lat", 2, 20)
	r.Record("pow", 1, 5)

	ts, vs := r.Series("lat")
	if len(ts) != 2 || ts[1] != 2 || vs[1] != 20 {
		t.Fatalf("series = %v %v", ts, vs)
	}
	if r.Len("lat") != 2 || r.Len("missing") != 0 {
		t.Fatal("Len wrong")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "lat" || names[1] != "pow" {
		t.Fatalf("names = %v", names)
	}
	if ts, vs := r.Series("missing"); ts != nil || vs != nil {
		t.Fatal("missing series should be nil")
	}
}

func TestSeriesReturnsCopies(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 1, 1)
	ts, _ := r.Series("a")
	ts[0] = 999
	ts2, _ := r.Series("a")
	if ts2[0] == 999 {
		t.Fatal("Series leaked internal slice")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("x", 0.5, 1.25)
	r.Record("y", 1, 2)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "series,t,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("csv lines = %v", lines)
	}
	if !strings.Contains(out, "x,0.5,1.25") {
		t.Fatalf("csv missing row:\n%s", out)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("shared", float64(i), float64(g))
			}
		}(g)
	}
	wg.Wait()
	if r.Len("shared") != 800 {
		t.Fatalf("concurrent records lost: %d", r.Len("shared"))
	}
}
