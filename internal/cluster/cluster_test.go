package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"sacs/internal/checkpoint"
	"sacs/internal/core"
	"sacs/internal/population"
	"sacs/internal/runner"
)

// testBuild is a checkpoint-friendly ring-gossip workload (store-backed
// random walk, cross-shard traffic every tick) local to this package: the
// cluster tests cannot use experiments.S2Config because experiments
// imports cluster for the S3 experiment, and an internal test file
// importing it back would be a test-induced import cycle. S3 itself runs
// the cluster against the real S2 workload.
func testBuild(agents, shards int, seed int64, pool *runner.Pool) population.Config {
	return population.Config{
		Name:   "wire-gossip",
		Agents: agents,
		Shards: shards,
		Seed:   seed,
		Pool:   pool,
		New: func(id int, rng *rand.Rand) *core.Agent {
			var a *core.Agent
			a = core.New(core.Config{
				Name: fmt.Sprintf("a%06d", id),
				Caps: core.Caps(core.LevelStimulus, core.LevelInteraction),
				Sensors: []core.Sensor{core.ScalarSensor("load", core.Private,
					func(now float64) float64 {
						return a.Store().Value("stim/load", float64(id%7)) + rng.Float64() - 0.5
					})},
				ExplainDepth: 8,
			})
			return a
		},
		Emit: func(ctx *population.EmitContext) {
			load := ctx.Agent.Store().Value("stim/load", 0)
			stim := core.Stimulus{Name: "load", Source: ctx.Agent.Name(),
				Scope: core.Public, Value: load, Time: ctx.Now}
			ctx.Send((ctx.ID+1)%agents, stim)
			if agents > 1 && ctx.Rng.Float64() < 0.25 {
				ctx.Send((ctx.ID+1+ctx.Rng.Intn(agents-1))%agents, stim)
			}
		},
		Observe: func(id int, a *core.Agent) float64 {
			return a.Store().Value("stim/load", 0)
		},
	}
}

// startWorkers brings up n in-process workers on loopback TCP — the same
// code path `sawd -worker` runs, minus the process boundary (the CI
// cluster-e2e job covers real processes) — and returns their addresses.
func startWorkers(t *testing.T, n int) ([]string, []*Worker) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w, err := NewWorker(ln, nil, []Workload{{Name: "gossip", Build: testBuild}})
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
		workers[i] = w
	}
	return addrs, workers
}

func dialAll(t *testing.T, addrs []string) *Client {
	t.Helper()
	cl, err := Dial(addrs, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

const (
	tAgents = 96
	tShards = 8
	tSeed   = 11
)

func testSpec(id string) Spec {
	return Spec{ID: id, Workload: "gossip", Agents: tAgents, Shards: tShards, Seed: tSeed}
}

func extStim(tick int) core.Stimulus {
	return core.Stimulus{Name: "ext", Source: "client", Scope: core.Public,
		Value: float64(tick) * 1.5, Time: float64(tick)}
}

// TestClusterByteIdenticalToInProcess is the tentpole contract at test
// scale: a coordinator engine whose shards live on two TCP workers must
// produce, tick for tick, exactly the TickStats of the single-process
// engine — external ingest included — and its snapshot must encode to the
// identical bytes. Experiment S3 asserts the same end to end; this test
// pins it close to the seam and additionally exercises Explain and the
// snapshot→Install resume path across a fresh cluster.
func TestClusterByteIdenticalToInProcess(t *testing.T) {
	ref := population.New(testBuild(tAgents, tShards, tSeed, nil))

	addrs, _ := startWorkers(t, 2)
	cl := dialAll(t, addrs)
	tr, err := cl.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	eng, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), tr)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	const ticks = 30
	for i := 0; i < ticks; i++ {
		if i%7 == 0 {
			if err := ref.Enqueue(i%tAgents, extStim(i)); err != nil {
				t.Fatal(err)
			}
			if err := eng.Enqueue(i%tAgents, extStim(i)); err != nil {
				t.Fatal(err)
			}
		}
		want := ref.Tick()
		got, err := eng.TickErr()
		if err != nil {
			t.Fatalf("cluster tick %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("tick %d stats diverge:\nin-process %+v\ncluster    %+v", i, want, got)
		}
	}

	refSnap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cluSnap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refEnc, err := checkpoint.EncodeBytes(refSnap, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluEnc, err := checkpoint.EncodeBytes(cluSnap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refEnc, cluEnc) {
		t.Fatalf("cluster snapshot differs from in-process snapshot (%d vs %d bytes)", len(cluEnc), len(refEnc))
	}

	// Explanations must read identically wherever the agent lives.
	for _, id := range []int{0, tAgents/2 + 1, tAgents - 1} {
		want, err := ref.Explain(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Explain(id)
		if err != nil {
			t.Fatalf("cluster explain %d: %v", id, err)
		}
		if want != got {
			t.Fatalf("agent %d explanation diverges across the transport", id)
		}
	}

	// Resume leg: a fresh cluster restored from the snapshot (the
	// shard-granular Install path) must continue byte-identically.
	addrs2, _ := startWorkers(t, 2)
	cl2 := dialAll(t, addrs2)
	tr2, err := cl2.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := population.RestoreWithTransport(testBuild(tAgents, tShards, tSeed, nil), tr2, cluSnap)
	if err != nil {
		t.Fatalf("restore over cluster: %v", err)
	}
	for i := 0; i < 10; i++ {
		want := ref.Tick()
		got, err := resumed.TickErr()
		if err != nil {
			t.Fatalf("resumed tick: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("resumed tick %d diverges", i)
		}
	}
	a, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := resumed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := checkpoint.EncodeBytes(a, nil)
	eb, _ := checkpoint.EncodeBytes(b, nil)
	if !bytes.Equal(ea, eb) {
		t.Fatal("resumed cluster diverged from uninterrupted in-process run")
	}
}

// TestCostSnapshotAttachChaining: a coordinator hands its per-shard cost
// view to the next attach through Spec.Costs; workers must accept the v3
// init frame (non-empty cost vector), the new transport must start from the
// prior rather than zeros, the seeded engine must stay byte-identical to an
// in-process run, and a mis-sized snapshot must be rejected before any
// worker is touched.
func TestCostSnapshotAttachChaining(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	cl := dialAll(t, addrs)

	tr, err := cl.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(5)
	costs := tr.ShardCosts(nil)
	for s, c := range costs {
		if c <= 0 {
			t.Fatalf("shard %d cost = %v after 5 ticks, want > 0", s, c)
		}
	}

	spec2 := testSpec("chained")
	spec2.Costs = costs
	tr2, err := cl.NewTransport(spec2)
	if err != nil {
		t.Fatalf("attach with cost snapshot: %v", err)
	}
	if got := tr2.ShardCosts(nil); !reflect.DeepEqual(got, costs) {
		t.Fatalf("chained transport starts from %v, want the prior %v", got, costs)
	}

	// Cost priors steer dispatch only: the seeded cluster engine must tick
	// byte-identically to a fresh in-process engine.
	ref := population.New(testBuild(tAgents, tShards, tSeed, nil))
	eng2, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), tr2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := ref.Tick()
		got, err := eng2.TickErr()
		if err != nil {
			t.Fatalf("seeded tick %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("tick %d diverges under a cost prior", i)
		}
	}

	bad := testSpec("bad")
	bad.Costs = costs[:3]
	if _, err := cl.NewTransport(bad); err == nil || !strings.Contains(err.Error(), "cost snapshot") {
		t.Fatalf("mis-sized cost snapshot accepted: %v", err)
	}
}

// TestWorkerFailureMidRunPoisonsEngine: a dead worker must surface as a
// tick error, and the engine must refuse further ticks (the tick may have
// half-applied remotely) until rebuilt from a checkpoint.
func TestWorkerFailureMidRunPoisonsEngine(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	cl := dialAll(t, addrs)
	tr, err := cl.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TickErr(); err != nil {
		t.Fatalf("healthy tick: %v", err)
	}
	workers[1].Close() // worker "process" dies: listener and live conns gone
	if _, err := eng.TickErr(); err == nil {
		t.Fatal("tick over a dead worker succeeded")
	}
	if _, err := eng.TickErr(); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("engine not poisoned after transport failure: %v", err)
	}
	if _, err := eng.Snapshot(); err == nil {
		t.Fatal("snapshot over a dead worker succeeded")
	}
}

// TestStaleAttachEpochFailsLoudly is the split-brain guard: when a second
// coordinator initialises the same population id on the same workers, the
// first coordinator's state is gone — its next tick must be a loud error
// (which poisons its engine), never a silent 200 stepping replaced agents.
// The stale coordinator's shutdown must also not tear down the successor.
func TestStaleAttachEpochFailsLoudly(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	clA := dialAll(t, addrs)
	trA, err := clA.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	engA, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), trA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engA.TickErr(); err != nil {
		t.Fatal(err)
	}

	// The hijack: coordinator B attaches the same id.
	clB := dialAll(t, addrs)
	trB, err := clB.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	engB, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), trB)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := engA.TickErr(); err == nil || !strings.Contains(err.Error(), "stale attach epoch") {
		t.Fatalf("stale coordinator ticked without a loud failure: %v", err)
	}
	// A's shutdown must not destroy B's live population.
	engA.Close()
	if _, err := engB.TickErr(); err != nil {
		t.Fatalf("successor coordinator broken by stale coordinator's shutdown: %v", err)
	}
}

// TestTransportValidation covers attach-time error paths: unknown
// workloads, too many workers for the shard count, and bad specs.
func TestTransportValidation(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	cl := dialAll(t, addrs)

	if _, err := cl.NewTransport(Spec{ID: "x", Workload: "nope", Agents: 64, Shards: 8, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload: %v", err)
	}
	if _, err := cl.NewTransport(Spec{ID: "x", Workload: "gossip", Agents: 64, Shards: 1, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "at least one shard") {
		t.Fatalf("too many workers: %v", err)
	}
	if _, err := cl.NewTransport(Spec{Workload: "gossip", Agents: 64}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := Dial(nil, time.Second); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, 100*time.Millisecond); err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if _, err := NewWorker(nil, nil, []Workload{{Name: "a", Build: testBuild}, {Name: "a", Build: testBuild}}); err == nil {
		t.Fatal("duplicate workload accepted")
	}
}

// TestFrameBounds pins the framing layer: round trip, and rejection of
// frames whose declared length exceeds the limit — a confused peer must
// fail cleanly, not OOM the worker.
func TestFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgPing, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(&buf)
	if err != nil || typ != msgPing || string(body) != "hello" {
		t.Fatalf("round trip = %d %q %v", typ, body, err)
	}

	// A forged header declaring a frame beyond maxFrame.
	forged := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bytes.NewReader(forged)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A zero-length frame (no type byte) is equally malformed.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("empty frame accepted")
	}
}

// TestWorkerSurvivesMalformedRequests: a worker fed garbage must answer
// with errors (or drop the connection), never crash, and must keep serving
// the population for a well-behaved coordinator afterwards.
func TestWorkerSurvivesMalformedRequests(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	cl := dialAll(t, addrs)
	if _, err := cl.NewTransport(testSpec("p")); err != nil {
		t.Fatal(err)
	}

	rogue, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	// Tick for an unhosted population id.
	e := checkpoint.NewEncoder()
	e.Str("ghost")
	e.Int(0)
	e.Uvarint(0)
	if err := writeFrame(rogue, msgTick, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(rogue)
	if err != nil || typ != msgErr {
		t.Fatalf("unhosted tick reply = %d %v", typ, err)
	}
	if d := checkpoint.NewDecoder(body); !strings.Contains(d.Str(), "no population") {
		t.Fatal("error reply does not name the missing population")
	}
	// A truncated init body must produce an error, not a panic.
	if err := writeFrame(rogue, msgInit, []byte{protocolVersion}); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = readFrame(rogue); err != nil || typ != msgErr {
		t.Fatalf("truncated init reply = %d %v", typ, err)
	}
	// A wrong protocol version is refused by name.
	e = checkpoint.NewEncoder()
	e.Uvarint(99)
	encodeSpec(e, testSpec("v"))
	e.Int(0)
	e.Int(1)
	if err := writeFrame(rogue, msgInit, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	typ, body, err = readFrame(rogue)
	if err != nil || typ != msgErr {
		t.Fatalf("version mismatch reply = %d %v", typ, err)
	}
	if d := checkpoint.NewDecoder(body); !strings.Contains(d.Str(), "version") {
		t.Fatal("version error does not mention the version")
	}

	// The original population still ticks for its coordinator.
	eng, err := population.NewWithTransport(testBuild(tAgents, tShards, tSeed, nil), mustTransport(t, cl))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TickErr(); err != nil {
		t.Fatalf("worker unusable after malformed traffic: %v", err)
	}
}

func mustTransport(t *testing.T, cl *Client) *Transport {
	t.Helper()
	tr, err := cl.NewTransport(testSpec("p"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
