// Package camnet simulates a distributed smart-camera network with
// market-based tracking handover, the case study behind the paper's
// heterogeneity discussion (§II; Lewis/Esterle et al. [11,13,17,48]).
//
// Cameras with limited fields of view track moving objects. Responsibility
// for an object is exchanged through auctions; a camera's *marketing
// strategy* controls whom it invites and how eagerly it advertises, trading
// tracking utility against communication cost. Self-aware cameras learn
// their own strategy online from local experience — and, as in the paper's
// "learning to be different" study, a network of identical learners becomes
// heterogeneous, matching the best fixed strategy's utility at a fraction of
// its communication cost.
package camnet
