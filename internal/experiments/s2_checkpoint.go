package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"sacs/internal/checkpoint"
	"sacs/internal/core"
	"sacs/internal/goals"
	"sacs/internal/population"
	"sacs/internal/runner"
	"sacs/internal/stats"
)

// Goal sets for the S2 workload. They are package-level values because the
// resume contract requires the agent factory to rebuild the *same* goal
// schedule on restore; the switcher's snapshot stores only its position.
var (
	s2GoalSteady = goals.NewSet("steady",
		goals.Objective{Name: "load", Direction: goals.Minimize, Weight: 1, Scale: 10})
	s2GoalSurge = goals.NewSet("surge",
		goals.Objective{Name: "load", Direction: goals.Maximize, Weight: 2, Scale: 10,
			Constrained: true, Bound: 25})
)

// S2Config builds the S2 population: full-stack self-aware agents (all five
// levels, including time-awareness predictors and the meta monitor) whose
// load sensor is a random walk that keeps its position in the knowledge
// store rather than in the sensor closure, and whose goal switches from
// "steady" to "surge" at tick 60. Every piece of mutable agent state
// therefore lives in the components a population Snapshot captures — the
// checkpointable-workload contract of DESIGN.md. Exported so that
// BenchmarkCheckpointRoundTrip, the serve tests and cmd/sawd's demo
// workload registry all exercise the exact population S2 validates.
func S2Config(agents, shards int, seed int64, pool *runner.Pool) population.Config {
	return population.Config{
		Name:   "S2",
		Agents: agents,
		Shards: shards,
		Seed:   seed,
		Pool:   pool,
		New: func(id int, rng *rand.Rand) *core.Agent {
			sw := goals.NewSwitcher(s2GoalSteady)
			sw.ScheduleSwitch(60, s2GoalSurge)
			var a *core.Agent
			a = core.New(core.Config{
				Name:  fmt.Sprintf("a%06d", id),
				Caps:  core.FullStack,
				Goals: sw,
				Sensors: []core.Sensor{core.ScalarSensor("load", core.Private,
					func(now float64) float64 {
						// Resume-safe random walk: previous position read
						// back from the store, increment drawn from the
						// engine-owned (checkpointed) agent stream.
						return a.Store().Value("stim/load", float64(id%11)) + rng.Float64() - 0.48
					})},
				ExplainDepth: 8,
			})
			return a
		},
		Emit: func(ctx *population.EmitContext) {
			load := ctx.Agent.Store().Value("stim/load", 0)
			stim := core.Stimulus{Name: "load", Source: ctx.Agent.Name(),
				Scope: core.Public, Value: load, Time: ctx.Now}
			ctx.Send((ctx.ID+1)%agents, stim)
			// Random extra gossip needs a second distinct peer to draw.
			if agents > 1 && ctx.Rng.Float64() < 0.25 {
				ctx.Send((ctx.ID+1+ctx.Rng.Intn(agents-1))%agents, stim)
			}
		},
		Observe: func(id int, a *core.Agent) float64 {
			return a.Store().Value("stim/load", 0)
		},
	}
}

// S2CheckpointResume proves the checkpoint layer's resume-determinism
// contract end to end: a population checkpointed at tick T — serialised
// through the full wire format to a file on disk, read back, and restored
// into a fresh engine — continues byte-identically to the uninterrupted
// run. "Byte-identically" is meant literally: the encoded final snapshot of
// the resumed run is compared with bytes.Equal against the encoded final
// snapshot of a run that was never interrupted.
//
// The check runs at 1 and 8 workers with the checkpoint cut at a different
// tick for each seed, and additionally asserts that the final bytes agree
// ACROSS worker counts, so one table row failing pins down exactly which
// leg of the contract broke. Every cell is deterministic; like all suite
// tables it is byte-identical at any -parallel value.
func S2CheckpointResume(cfg Config) *Result {
	cfg = cfg.defaults()
	ticks := int(120 * cfg.Scale)
	if ticks < 24 {
		ticks = 24
	}
	agents := int(512 * cfg.Scale)
	if agents < 64 {
		agents = 64
	}
	const shards = 16

	table := stats.NewTable(
		fmt.Sprintf("S2 checkpoint/resume determinism: %d agents, %d shards, %d ticks, %d seeds",
			agents, shards, ticks, cfg.Seeds),
		"workers", "ckpt-tick", "snap-KiB", "resume-match", "xworker-match", "model-mean")

	type leg struct {
		workers int
		enc     []byte
		row     []float64
	}
	legs := make([]leg, 0, 2)
	for _, workers := range []int{1, 8} {
		workers := workers
		// One scenario per seed, each cutting at a different tick; the row
		// is the seed average, so resume-match = 1.0 means every seed's
		// resumed bytes matched its reference. The fan-out itself rides the
		// suite pool; the populations run on private 1- and 8-worker pools
		// because the worker count under test is the point.
		var encs [][]byte
		row := runner.SeedAvg(cfg.Pool, "S2", fmt.Sprintf("workers=%d", workers), cfg.Seeds,
			func(seed int) []float64 {
				pool := runner.New(workers)
				defer pool.Close()
				cut := 1 + (ticks*(seed+1))/(cfg.Seeds+1) // distinct interior cut per seed
				if cut >= ticks {
					cut = ticks - 1
				}
				build := func() population.Config {
					return S2Config(agents, shards, int64(211+seed), pool)
				}

				ref := population.New(build())
				ref.Run(ticks)
				refEnc := mustEncode(ref)

				// Interrupted run: checkpoint at the cut through a real
				// file (the daemon's path), then resume in a fresh engine.
				e := population.New(build())
				e.Run(cut)
				snap, err := e.Snapshot()
				if err != nil {
					panic(fmt.Sprintf("S2: snapshot: %v", err))
				}
				dir, err := os.MkdirTemp("", "sacs-s2-*")
				if err != nil {
					panic(fmt.Sprintf("S2: tempdir: %v", err))
				}
				defer os.RemoveAll(dir)
				path := filepath.Join(dir, checkpoint.FileName("s2", cut))
				if err := checkpoint.Write(path, snap, map[string]string{"workload": "s2"}); err != nil {
					panic(fmt.Sprintf("S2: write: %v", err))
				}
				loaded, _, err := checkpoint.Read(path)
				if err != nil {
					panic(fmt.Sprintf("S2: read: %v", err))
				}
				resumed, err := population.Restore(build(), loaded)
				if err != nil {
					panic(fmt.Sprintf("S2: restore: %v", err))
				}
				resumed.Run(ticks - cut)
				resEnc := mustEncode(resumed)

				match := 0.0
				if bytes.Equal(refEnc, resEnc) {
					match = 1
				}
				if seed == 0 {
					encs = append(encs, refEnc)
				}
				rs := resumed.Run(0)
				return []float64{float64(cut), float64(len(resEnc)) / 1024, match, rs.Observed.Mean()}
			})
		legs = append(legs, leg{workers: workers, enc: encs[0], row: row})
	}

	for _, l := range legs {
		x := 0.0
		if bytes.Equal(l.enc, legs[0].enc) {
			x = 1
		}
		table.AddRow(fmt.Sprintf("workers=%d", l.workers),
			float64(l.workers), l.row[0], l.row[1], l.row[2], x, l.row[3])
	}
	table.AddNote("resume-match: fraction of seeds whose run — checkpointed to disk at ckpt-tick, " +
		"read back and resumed in a fresh engine — ended with an encoded snapshot byte-identical " +
		"to the uninterrupted reference at the same worker count (must be 1)")
	table.AddNote("xworker-match: 1 when the seed-0 reference snapshot bytes equal the workers=1 " +
		"row's (resume determinism holds across worker counts, not just within one)")
	table.AddNote("snapshots travel the full path: population.Snapshot -> checkpoint.Write " +
		"(versioned binary + CRC-32C) -> checkpoint.Read -> population.Restore")
	return resultFor("S2", table)
}

// mustEncode snapshots an engine and encodes it, panicking on error (the
// runner pool's per-job recovery reports it as the job's failure).
func mustEncode(e *population.Engine) []byte {
	s, err := e.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("S2: snapshot: %v", err))
	}
	b, err := checkpoint.EncodeBytes(s, nil)
	if err != nil {
		panic(fmt.Sprintf("S2: encode: %v", err))
	}
	return b
}
