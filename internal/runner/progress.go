package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// NewReporter returns an OnProgress callback that writes one status line
// per completion to w, throttled to at most one line per `every` (0 means
// every completion). The final completion is always reported. The returned
// callback is safe for concurrent use, as Pool.OnProgress requires.
func NewReporter(w io.Writer, every time.Duration) func(Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(pr Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if pr.Done < pr.Total && now.Sub(last) < every {
			return
		}
		last = now
		line := fmt.Sprintf("runner: %d/%d jobs done, last %s in %v, elapsed %v",
			pr.Done, pr.Total, pr.Key, pr.JobTime.Round(time.Millisecond),
			pr.Elapsed.Round(time.Millisecond))
		if pr.ETA > 0 {
			line += fmt.Sprintf(", eta %v", pr.ETA.Round(time.Second))
		}
		fmt.Fprintln(w, line)
	}
}
