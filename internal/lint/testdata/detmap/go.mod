module detmapfix

go 1.24
