package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sacs/internal/core"
	"sacs/internal/knowledge"
)

// The HTTP surface of a Server. Errors are returned as JSON
// {"error": "..."} with 400 for caller mistakes (unknown population,
// out-of-range agent, malformed body) and 500 for host-side failures
// (checkpoint I/O). All handlers are safe for concurrent use: they go
// through the Server methods, which serialise per population.

// StimulusRequest is the POST /populations/{id}/stimuli body: one external
// observation to deliver to agent To at the next tick. Scope is "public"
// (default) or "private"; Time defaults to the population's current tick.
type StimulusRequest struct {
	To     int      `json:"to"`
	Name   string   `json:"name"`
	Value  float64  `json:"value"`
	Source string   `json:"source,omitempty"`
	Scope  string   `json:"scope,omitempty"`
	Time   *float64 `json:"time,omitempty"`
}

// Handler returns the Server's HTTP API:
//
//	GET  /healthz                              liveness + uptime + population count
//	GET  /populations                          all populations' status
//	GET  /populations/{id}                     one population's status
//	POST /populations/{id}/ticks?n=K           advance K ticks (default 1)
//	POST /populations/{id}/stimuli             ingest one StimulusRequest
//	GET  /populations/{id}/agents/{n}/explain  per-agent self-explanation (text)
//	POST /populations/{id}/checkpoint          snapshot to disk now
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":          true,
			"uptime_sec":  time.Since(s.started).Seconds(),
			"populations": len(s.IDs()),
		})
	})

	mux.HandleFunc("GET /populations", func(w http.ResponseWriter, r *http.Request) {
		out := make([]Status, 0)
		for _, id := range s.IDs() {
			st, err := s.Status(id)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			out = append(out, st)
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /populations/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /populations/{id}/ticks", func(w http.ResponseWriter, r *http.Request) {
		n := 1
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q: %w", q, err))
				return
			}
			n = v
		}
		const maxTicksPerRequest = 100000 // backpressure: bound one request's work
		if n < 1 || n > maxTicksPerRequest {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("n must be in [1, %d], got %d", maxTicksPerRequest, n))
			return
		}
		last, err := s.Advance(r.PathValue("id"), n)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrHost) {
				code = http.StatusInternalServerError
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ticked":    n,
			"tick":      last.Tick + 1, // ticks completed after this request
			"steps":     last.Steps,
			"messages":  last.Messages,
			"delivered": last.Delivered,
			"actions":   last.Actions,
		})
	})

	mux.HandleFunc("POST /populations/{id}/stimuli", func(w http.ResponseWriter, r *http.Request) {
		var req StimulusRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad stimulus body: %w", err))
			return
		}
		if req.Name == "" {
			writeErr(w, http.StatusBadRequest, errors.New("stimulus needs a name"))
			return
		}
		scope := knowledge.Public
		switch req.Scope {
		case "", "public":
		case "private":
			scope = knowledge.Private
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad scope %q (public|private)", req.Scope))
			return
		}
		stim := core.Stimulus{Name: req.Name, Source: req.Source, Scope: scope, Value: req.Value}
		if req.Time != nil {
			stim.Time = *req.Time
		}
		deliverAt, err := s.Ingest(r.PathValue("id"), req.To, stim, req.Time != nil)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "deliver_at_tick": deliverAt})
	})

	mux.HandleFunc("GET /populations/{id}/agents/{n}/explain", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.Atoi(r.PathValue("n"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad agent index %q", r.PathValue("n")))
			return
		}
		text, err := s.Explain(r.PathValue("id"), n)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})

	mux.HandleFunc("POST /populations/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		path, err := s.Checkpoint(r.PathValue("id"))
		if err != nil {
			code := http.StatusInternalServerError
			if _, hostErr := s.hosted(r.PathValue("id")); hostErr != nil {
				code = http.StatusBadRequest
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"path": path})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
